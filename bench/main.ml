(* Benchmark and reproduction harness.

   One section per artifact of the paper (see DESIGN.md §2 and
   EXPERIMENTS.md): the two commutativity tables of Section 6 are
   regenerated from the specification and diffed against the published
   figures; the worked examples of Sections 3.3 and 5 are re-checked; the
   only-if counterexamples of Theorems 9 and 10 are constructed and
   verified; and the concurrency trade-off of Section 8 is quantified by
   deterministic scheduler sweeps.  A final section reports
   Bechamel micro-benchmarks of the engine's operation cost under each
   recovery/conflict configuration. *)

open Tm_core
module BA = Tm_adt.Bank_account
module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler

let section title = Fmt.pr "@.=== %s ===@.@." title

let verdict ok = if ok then "MATCH" else "MISMATCH"

(* ------------------------------------------------------------------ *)
(* Figures 6-1 and 6-2: commutativity tables for the bank account.     *)

let params = Commutativity.params ~alpha_depth:5 ~future_depth:5 ()

let figure_6_1 () =
  section "F6.1 — Figure 6-1: forward commutativity for BA";
  let computed = Commutativity.fc_table BA.spec params BA.classes in
  Fmt.pr "computed from Spec(BA):@.%a@." Commutativity.pp_table computed;
  Fmt.pr "paper figure:         %s@."
    (verdict (Commutativity.equal_table computed BA.paper_fc_table))

let figure_6_2 () =
  section "F6.2 — Figure 6-2: right backward commutativity for BA";
  let computed = Commutativity.rbc_table BA.spec params BA.classes in
  Fmt.pr "computed from Spec(BA):@.%a@." Commutativity.pp_table computed;
  Fmt.pr "paper figure:         %s@."
    (verdict (Commutativity.equal_table computed BA.paper_rbc_table))

(* ------------------------------------------------------------------ *)
(* Section 3.3 example history.                                        *)

let example_3_3 () =
  section "E3.3 — the worked history of Section 3.3";
  let env = Atomicity.env_of_list [ BA.spec ] in
  let h =
    History.empty
    |> History.exec Tid.a (BA.deposit 3)
    |> History.exec Tid.b (BA.withdraw_ok 2)
    |> History.exec Tid.a (BA.balance 3)
    |> History.invoke Tid.b ~obj:"BA" (Op.invocation "balance")
    |> History.commit_at Tid.a "BA"
    |> History.respond Tid.b ~obj:"BA" (Value.int 1)
    |> History.commit_at Tid.b "BA"
    |> History.exec Tid.c (BA.withdraw_no 2)
    |> History.commit_at Tid.c "BA"
  in
  Fmt.pr "%a@.@." History.pp h;
  Fmt.pr "atomic (paper: yes):          %b@." (Atomicity.atomic env h);
  Fmt.pr "dynamic atomic (paper: yes):  %b@." (Atomicity.is_dynamic_atomic env h);
  Fmt.pr "serializes in A-B-C:          %b@."
    (Atomicity.serializable_in env (History.permanent h) [ Tid.a; Tid.b; Tid.c ]);
  (* the paper's perturbation: B's last response before A's commit *)
  let perturbed =
    History.empty
    |> History.exec Tid.a (BA.deposit 3)
    |> History.exec Tid.b (BA.withdraw_ok 2)
    |> History.exec Tid.a (BA.balance 3)
    |> History.exec Tid.b (BA.balance 1)
    |> History.commit_at Tid.a "BA"
    |> History.commit_at Tid.b "BA"
    |> History.exec Tid.c (BA.withdraw_no 2)
    |> History.commit_at Tid.c "BA"
  in
  Fmt.pr "perturbed variant dynamic atomic (paper: no): %b@."
    (Atomicity.is_dynamic_atomic env perturbed)

(* ------------------------------------------------------------------ *)
(* Section 5 example: UIP vs DU views.                                 *)

let example_5_1 () =
  section "E5.1 — the Section 5 view example";
  let h =
    History.empty
    |> History.exec Tid.a (BA.deposit 5)
    |> History.commit_at Tid.a "BA"
    |> History.exec Tid.b (BA.withdraw_ok 3)
  in
  Fmt.pr "%a@.@." History.pp h;
  let pp_ops = Fmt.(list ~sep:(any "; ") Op.pp) in
  Fmt.pr "UIP(H,B) = [%a]   (paper: deposit;withdraw)@." pp_ops (View.apply View.uip h Tid.b);
  Fmt.pr "UIP(H,C) = [%a]   (paper: same)@." pp_ops (View.apply View.uip h Tid.c);
  Fmt.pr "DU(H,B)  = [%a]   (paper: deposit;withdraw)@." pp_ops (View.apply View.du h Tid.b);
  Fmt.pr "DU(H,C)  = [%a]   (paper: deposit only)@." pp_ops (View.apply View.du h Tid.c)

(* ------------------------------------------------------------------ *)
(* Theorems 9 and 10: constructive only-if + soundness.                *)

let theorem tag name refute sound_conflict unsound_conflict view =
  section (tag ^ " — " ^ name);
  (match refute unsound_conflict with
  | None -> Fmt.pr "unexpected: no counterexample found@."
  | Some (cex : Theorems.cex) ->
      let i = Impl_model.make ~spec:BA.spec ~view ~conflict:unsound_conflict in
      let env = Atomicity.env_of_list [ BA.spec ] in
      Fmt.pr "deficient relation %s admits:@.%a@." (Conflict.name unsound_conflict)
        Theorems.pp_cex cex;
      Fmt.pr "history in L(I):        %b (paper: yes)@." (Impl_model.valid i cex.history);
      Fmt.pr "dynamic atomic:         %b (paper: no)@."
        (Atomicity.is_dynamic_atomic env cex.history));
  Fmt.pr "sound relation %s refutable: %b (paper: no)@." (Conflict.name sound_conflict)
    (Option.is_some (refute sound_conflict))

let theorem_9 () =
  theorem "T9" "Theorem 9: I(X,Spec,UIP,C) correct iff NRBC ⊆ C"
    (fun c -> Theorems.uip_refute BA.spec params c)
    BA.nrbc_conflict BA.nfc_conflict View.uip

let theorem_10 () =
  theorem "T10" "Theorem 10: I(X,Spec,DU,C) correct iff NFC ⊆ C"
    (fun c -> Theorems.du_refute BA.spec params c)
    BA.nfc_conflict BA.nrbc_conflict View.du

(* ------------------------------------------------------------------ *)
(* Incomparability of NFC and NRBC across the ADT library.             *)

let incomparability () =
  section "INC — NFC vs NRBC across the ADT library (Section 6.4)";
  let report name spec (nfc : Conflict.t) (nrbc : Conflict.t) =
    let ops = Spec.generators spec in
    let pairs rel =
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              if Conflict.conflicts rel ~requested:a ~held:b then Some (a, b) else None)
            ops)
        ops
    in
    let n1 = pairs nfc and n2 = pairs nrbc in
    let diff l1 l2 = List.filter (fun x -> not (List.mem x l2)) l1 in
    let d12 = diff n1 n2 and d21 = diff n2 n1 in
    Fmt.pr "%-4s |NFC|=%3d |NRBC|=%3d |NFC\\NRBC|=%3d |NRBC\\NFC|=%3d" name
      (List.length n1) (List.length n2) (List.length d12) (List.length d21);
    (match d12, d21 with
    | (a, b) :: _, (c, d) :: _ ->
        Fmt.pr "  e.g. %a/%a vs %a/%a" Op.pp_short a Op.pp_short b Op.pp_short c
          Op.pp_short d
    | _ -> ());
    Fmt.pr "@."
  in
  report "BA" BA.spec BA.nfc_conflict BA.nrbc_conflict;
  (let module C = Tm_adt.Bounded_counter in
   report "CTR" C.spec C.nfc_conflict C.nrbc_conflict);
  (let module S = Tm_adt.Int_set in
   report "SET" S.spec S.nfc_conflict S.nrbc_conflict);
  (let module R = Tm_adt.Register in
   report "REG" R.spec R.nfc_conflict R.nrbc_conflict);
  (let module Q = Tm_adt.Semiqueue in
   report "SQ" Q.spec Q.nfc_conflict Q.nrbc_conflict);
  (let module K = Tm_adt.Kv_store in
   report "KV" K.spec K.nfc_conflict K.nrbc_conflict);
  (let module M = Tm_adt.Ordered_map in
   report "OM" M.spec M.nfc_conflict M.nrbc_conflict);
  Fmt.pr "@.(non-empty differences both ways = the recovery methods place@.\
          incomparable constraints on concurrency control)@."

(* ------------------------------------------------------------------ *)
(* C1: the concurrency trade-off quantified.                           *)

let cfg = Scheduler.config ~concurrency:8 ~total_txns:200 ~seed:7 ~max_rounds:100_000 ()

let run_sweep title scenarios =
  section title;
  List.iter
    (fun scenario -> Fmt.pr "%a@." Experiment.pp_table (Experiment.run_matrix scenario cfg))
    scenarios

let c1a () =
  run_sweep
    "C1a — hot-spot account, withdraw-fraction sweep (UIP wins right end, DU wins left-middle)"
    (List.map (fun w -> Experiment.bank_sweep ~withdraw_pct:w) [ 0; 25; 50; 75; 100 ])

let c1b () =
  run_sweep
    "C1b — escrow pool, reservation-fraction sweep (UIP wins the ends, DU wins the middle)"
    (List.map (fun d -> Experiment.inventory_sweep ~decr_pct:d) [ 0; 25; 50; 75; 100 ])

let c1c () =
  run_sweep "C1c — mixed workloads: semantic locking vs read/write 2PL"
    [
      Experiment.bank_hotspot;
      Experiment.bank_accounts ();
      Experiment.register_baseline;
      Experiment.kv_store ();
    ]

let c1d () =
  run_sweep "C1d — broker queues: FIFO vs semiqueue (weaker spec, more concurrency)"
    [ Experiment.queue_fifo; Experiment.queue_semiqueue ]

let c1e () =
  section "C1e — scaling: rounds to commit 200 mixed transactions vs concurrency";
  Fmt.pr "%-12s %10s %10s %10s %10s@." "concurrency" "UIP+NRBC" "DU+NFC" "OCC+NFC" "serial";
  let scenario = Experiment.bank_hotspot in
  List.iter
    (fun c ->
      let cfg = Scheduler.config ~concurrency:c ~total_txns:200 ~seed:7 () in
      let rounds s =
        let row = Experiment.run scenario s cfg in
        assert row.Experiment.consistent;
        row.Experiment.stats.Scheduler.rounds
      in
      Fmt.pr "%-12d %10d %10d %10d %10d@." c
        (rounds (Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic))
        (rounds (Experiment.setup Tm_engine.Recovery.DU Experiment.Semantic))
        (rounds (Experiment.setup ~occ:true Tm_engine.Recovery.DU Experiment.Semantic))
        (rounds (Experiment.setup Tm_engine.Recovery.UIP Experiment.Total)))
    [ 1; 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* Ablations (Section 8's design-choice claims, quantified).           *)

let funded = Tm_adt.Bank_account.spec_with_initial 100_000

let bank_ablation_row ~scenario_name ~label ~withdraw_pct conflict =
  let workload =
    Tm_sim.Workload.bank_hotspot ~deposit:(100 - withdraw_pct) ~withdraw:withdraw_pct
      ~balance:0 ()
  in
  Experiment.run_custom ~name:scenario_name ~label ~workload
    ~build:(fun () ->
      [
        Tm_engine.Atomic_object.create ~spec:funded ~conflict
          ~recovery:Tm_engine.Recovery.UIP ();
      ])
    cfg

let abl_nrbc_refinements () =
  section
    "ABL1 — UIP locking: NRBC vs its symmetric closure vs invocation-blind \
     (the paper's 'fewer conflicts than previous algorithms')";
  let nrbc = BA.nrbc_conflict in
  let sym = Conflict.symmetric_closure nrbc in
  let blind = Conflict.invocation_blind BA.spec nrbc in
  List.iter
    (fun w ->
      let scenario_name = Fmt.str "bank-w%d" w in
      let rows =
        [
          bank_ablation_row ~scenario_name ~label:"NRBC" ~withdraw_pct:w nrbc;
          bank_ablation_row ~scenario_name ~label:"sym(NRBC)" ~withdraw_pct:w sym;
          bank_ablation_row ~scenario_name ~label:"inv-blind" ~withdraw_pct:w blind;
        ]
      in
      Fmt.pr "%a@." Experiment.pp_table rows)
    [ 50; 100 ]

let abl_escrow () =
  section
    "ABL2 — escrow (O'Neil) vs conflict-based locking on the inventory pool \
     (state-dependent conflict tests are outside the paper's framework and \
     beat both recovery methods on mixed updates)";
  let capacity = 100_000 and initial = 50_000 in
  Fmt.pr "%-12s %12s %12s %12s %12s@." "decr%" "UIP+NRBC" "DU+NFC" "OCC+NFC" "escrow";
  List.iter
    (fun d ->
      let scenario = Experiment.inventory_sweep ~decr_pct:d in
      let engine_rounds s =
        let row = Experiment.run scenario s cfg in
        assert row.Experiment.consistent;
        row.Experiment.stats.Scheduler.rounds
      in
      let escrow = Tm_engine.Escrow.create ~capacity ~initial ~name:"CTR" in
      let stats = Tm_sim.Escrow_runner.run escrow scenario.Experiment.workload cfg in
      assert (Tm_sim.Escrow_runner.verify ~capacity ~initial escrow);
      Fmt.pr "%-12d %12d %12d %12d %12d@." d
        (engine_rounds (Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic))
        (engine_rounds (Experiment.setup Tm_engine.Recovery.DU Experiment.Semantic))
        (engine_rounds (Experiment.setup ~occ:true Tm_engine.Recovery.DU Experiment.Semantic))
        stats.Scheduler.rounds)
    [ 0; 25; 50; 75; 100 ]

let abl_occ_contention () =
  section
    "ABL3 — optimistic vs pessimistic DU under rising concurrency \
     (mixed-update hot spot: validation aborts vs blocking)";
  Fmt.pr "%-12s %12s %12s %14s %14s@." "concurrency" "DU rounds" "OCC rounds" "DU blocked"
    "OCC v-aborts";
  List.iter
    (fun c ->
      let cfg = Scheduler.config ~concurrency:c ~total_txns:200 ~seed:7 () in
      let scenario = Experiment.bank_sweep ~withdraw_pct:50 in
      let du =
        Experiment.run scenario (Experiment.setup Tm_engine.Recovery.DU Experiment.Semantic) cfg
      in
      let occ =
        Experiment.run scenario
          (Experiment.setup ~occ:true Tm_engine.Recovery.DU Experiment.Semantic)
          cfg
      in
      assert (du.Experiment.consistent && occ.Experiment.consistent);
      Fmt.pr "%-12d %12d %12d %14d %14d@." c du.Experiment.stats.Scheduler.rounds
        occ.Experiment.stats.Scheduler.rounds du.Experiment.stats.Scheduler.blocked
        occ.Experiment.stats.Scheduler.validation_aborts)
    [ 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* EXT-V: probing other View functions (the paper's open question).    *)

let ext_views () =
  section
    "EXT-V — probing View functions (\"are there other View functions...?\", §5): \
     required conflict pairs discovered by bounded model checking";
  (* a compact operation sample keeps the probe fast and the matrix
     readable *)
  let sample = [ BA.deposit 1; BA.withdraw_ok 1; BA.withdraw_no 1; BA.balance 0; BA.balance 1 ] in
  let labels = [ "dep"; "wok"; "wno"; "bal0"; "bal1" ] in
  let probe view =
    Theorems.probe_required_pairs BA.spec view ~ops:sample ~txns:2 ~ops_per_txn:2
      ~max_events:8 ~limit:4000
  in
  let matrix name view reference =
    let required = probe view in
    Fmt.pr "@.%s: required pairs (rows requested, columns held; * = required)@." name;
    Fmt.pr "%6s %s@." "" (String.concat " " (List.map (Fmt.str "%4s") labels));
    List.iteri
      (fun i p ->
        let cells =
          List.map
            (fun q ->
              Fmt.str "%4s"
                (if List.exists (fun (a, b) -> Op.equal a p && Op.equal b q) required then "*"
                 else ""))
            sample
        in
        Fmt.pr "%6s %s@." (List.nth labels i) (String.concat " " cells))
      sample;
    match reference with
    | None -> ()
    | Some (ref_name, rel) ->
        let agrees =
          List.for_all
            (fun p ->
              List.for_all
                (fun q ->
                  List.exists (fun (a, b) -> Op.equal a p && Op.equal b q) required
                  = Conflict.conflicts rel ~requested:p ~held:q)
                sample)
            sample
        in
        Fmt.pr "matches %s on the sample: %b@." ref_name agrees
  in
  matrix "UIP" View.uip (Some ("NRBC (Theorem 9)", BA.nrbc_conflict));
  matrix "DU" View.du (Some ("NFC (Theorem 10)", BA.nfc_conflict));
  (* A candidate third view: committed operations in *execution* order
     (not commit order), then the transaction's own — an intentions-list
     system that installs at original log positions. *)
  let du_exec =
    View.make ~name:"DU-exec" (fun h a ->
        History.opseq (History.permanent h) @ History.opseq (History.project_tid h a))
  in
  matrix "DU-exec-order" du_exec None;
  Fmt.pr
    "@.(pairwise probing gives a lower bound for novel views; for UIP and DU it@.\
     rediscovers the theorems' relations exactly)@."

(* ------------------------------------------------------------------ *)
(* OBS: registry-backed engine counters per scenario/setup.            *)

module Metrics = Tm_obs.Metrics

(* All histograms of one family (a name across its label sets). *)
let hist_family reg name =
  Metrics.fold reg
    (fun acc n _labels m ->
      match m with
      | Metrics.Histogram h when String.equal n name -> h :: acc
      | _ -> acc)
    []

let obs_breakdown () =
  section
    "OBS — observability breakdown: engine counters from each run's metrics \
     registry (conflicts are lock-table hits, waits are logical blocked ticks)";
  Fmt.pr "%-24s %-10s %10s %8s %8s %8s %8s %8s %9s %9s@." "scenario" "setup"
    "conflicts" "blocked" "no-resp" "v-fail" "victims" "retries" "wait-avg" "wait-p99";
  let pp_opt ppf = function
    | None -> Fmt.pf ppf "%9s" "-"
    | Some v -> Fmt.pf ppf "%9.1f" v
  in
  List.iter
    (fun scenario ->
      List.iter
        (fun (r : Experiment.row) ->
          let reg = r.metrics in
          let total = Metrics.counter_total reg in
          let waits = hist_family reg "tm_lock_wait_ticks" in
          let count = List.fold_left (fun a h -> a + Metrics.Histogram.count h) 0 waits in
          let sum = List.fold_left (fun a h -> a +. Metrics.Histogram.sum h) 0. waits in
          let avg = if count = 0 then None else Some (sum /. float_of_int count) in
          let p99 =
            List.fold_left
              (fun acc h ->
                match Metrics.Histogram.quantile h 0.99 with
                | Some v -> Some (max v (Option.value acc ~default:v))
                | None -> acc)
              None waits
          in
          Fmt.pr "%-24s %-10s %10d %8d %8d %8d %8d %8d %a %a@." r.scenario r.setup
            (total "tm_lock_conflicts_total")
            (total "tm_object_blocked_total")
            (total "tm_object_no_response_total")
            (total "tm_validation_failures_total")
            r.deadlock_victims r.retries pp_opt avg pp_opt p99)
        (Experiment.run_matrix scenario cfg))
    [
      Experiment.bank_hotspot;
      Experiment.bank_sweep ~withdraw_pct:50;
      Experiment.inventory;
      Experiment.queue_semiqueue;
      Experiment.kv_store ();
    ];
  (* One full registry dump as a sample of the summary exporter. *)
  let r = Experiment.run Experiment.bank_hotspot (Experiment.setup Tm_engine.Recovery.DU Experiment.Semantic) cfg in
  Fmt.pr "@.full registry for bank-hotspot DU+NFC:@.%a@." Metrics.pp_summary r.Experiment.metrics

(* ------------------------------------------------------------------ *)
(* OBS-analytics: conflict heat maps, UIP vs DU.                       *)

let obs_analytics_setups =
  [
    Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic;
    Experiment.setup Tm_engine.Recovery.DU Experiment.Semantic;
  ]

(* Heat maps for one scenario under both semantic setups, in one
   registry distinguished by the setup label — exactly what
   Heatmap.comparison pairs up. *)
let obs_heatmaps scenario =
  let merged = Metrics.create () in
  List.iter
    (fun s ->
      let r = Experiment.run scenario s cfg in
      assert r.Experiment.consistent;
      Metrics.merge
        ~extra_labels:[ ("scenario", r.Experiment.scenario); ("setup", r.Experiment.setup) ]
        merged r.Experiment.metrics)
    obs_analytics_setups;
  Tm_obs.Heatmap.of_metrics merged

let obs_analytics () =
  section
    "OBS-A — conflict heat maps, UIP(NRBC) vs DU(NFC): which operation \
     pairs actually collided (requested x held, from \
     tm_lock_conflicts_total)";
  List.iter
    (fun scenario ->
      let maps = obs_heatmaps scenario in
      Fmt.pr "%a@." (Tm_obs.Heatmap.pp_comparison ~by:"setup") maps)
    [ Experiment.bank_hotspot; Experiment.queue_semiqueue; Experiment.inventory ];
  Fmt.pr
    "(asymmetric hot cells are Section 6's tables made empirical: e.g. \
     withdraw@.held-withdraw conflicts only under DU/NFC, \
     withdraw-vs-deposit only under UIP/NRBC)@."

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel).                                        *)

let bench_engine_op recovery conflict =
  (* Cost of one executed deposit, amortised over a batch with periodic
     commits to keep the log bounded. *)
  let o = Tm_engine.Atomic_object.create ~spec:BA.spec ~conflict ~recovery () in
  let tid = ref 0 in
  fun () ->
    incr tid;
    let t = Tid.of_int !tid in
    (match
       Tm_engine.Atomic_object.invoke o t (Op.invocation ~args:[ Value.int 1 ] "deposit")
     with
    | Tm_engine.Atomic_object.Executed _ -> ()
    | _ -> failwith "bench: deposit blocked");
    Tm_engine.Atomic_object.commit o t

let bench_decision () =
  let p = Commutativity.params ~alpha_depth:4 ~future_depth:4 () in
  fun () -> ignore (Commutativity.fc BA.spec p (BA.withdraw_ok 1) (BA.deposit 1))

(* Abort cost: undo of one transaction's operation sitting on top of a
   populated log — general replay vs compensation by inverse. *)
let bench_abort ?inverse () =
  let r = Tm_engine.Recovery.create ?inverse Tm_engine.Recovery.UIP BA.spec in
  let filler = Tid.of_int 1 and victim = Tid.of_int 2 in
  for _ = 1 to 200 do
    Tm_engine.Recovery.record r filler (BA.deposit 1)
  done;
  fun () ->
    Tm_engine.Recovery.record r victim (BA.deposit 1);
    Tm_engine.Recovery.abort r victim

let bench_view view =
  let h = ref History.empty in
  for i = 0 to 19 do
    let t = Tid.of_int i in
    h := !h |> History.exec t (BA.deposit 1) |> History.commit_at t "BA"
  done;
  let h = !h in
  let observer = Tid.of_int 99 in
  fun () -> ignore (View.apply view h observer)

(* WAL recovery path: replay, fuzzy-checkpoint construction and a
   checkpoint+truncate cycle over a populated log (200 txns, one in ten
   left in flight). *)
module Wal = Tm_engine.Wal

let populated_wal () =
  let wal = Wal.create () in
  for i = 0 to 199 do
    let t = Tid.of_int i in
    Wal.append wal (Wal.Begin t);
    Wal.append wal (Wal.Operation (t, BA.deposit 1));
    if i mod 10 <> 0 then Wal.append wal (Wal.Commit t)
  done;
  wal

let bench_wal_replay () =
  let recs = Wal.records (populated_wal ()) in
  fun () -> ignore (Wal.replay recs)

let bench_wal_checkpoint () =
  let recs = Wal.records (populated_wal ()) in
  fun () -> ignore (Wal.fuzzy_checkpoint recs)

let bench_wal_truncate () =
  (* steady state after the first iteration: one fresh checkpoint
     summarising the previous one, then truncation to it *)
  let wal = populated_wal () in
  fun () ->
    Wal.append wal (Wal.Checkpoint (Wal.fuzzy_checkpoint (Wal.records wal)));
    ignore (Wal.truncate_to_checkpoint wal)

(* On-disk path (PR 3): frame encoding, the full append-through-storage
   write path, and decode+rebuild from the backend's bytes. *)
module Storage = Tm_engine.Storage
module Disk_wal = Tm_engine.Disk_wal

let bench_wal_encode () =
  let recs = Wal.records (populated_wal ()) in
  fun () -> ignore (Wal.Codec.encode_all recs)

let bench_disk_append () =
  let recs = Wal.records (populated_wal ()) in
  fun () ->
    let dw = Disk_wal.create (Storage.memory ()) in
    List.iter (Wal.append (Disk_wal.wal dw)) recs;
    Wal.force (Disk_wal.wal dw)

let bench_disk_replay () =
  let store = Storage.memory () in
  let dw = Disk_wal.create store in
  List.iter (Wal.append (Disk_wal.wal dw)) (Wal.records (populated_wal ()));
  fun () ->
    match Disk_wal.load store with
    | Ok dw -> ignore (Wal.replay (Wal.records (Disk_wal.wal dw)))
    | Error _ -> assert false

(* Lock-table before/after: the pre-PR-4 association-list table
   (inlined here as the baseline) against Lock_table's per-tid
   hashtable index.  Same logical workload for both: 64 transactions
   acquire 4 holds each, then each in turn is probed for blockers and
   released. *)
let lock_txns = 64
let lock_ops_per_txn = 4

let bench_lock_table_list () =
  let conflict = BA.nrbc_conflict in
  let requested = BA.withdraw_ok 1 in
  let op = BA.deposit 1 in
  fun () ->
    let held = ref [] in
    for i = 0 to lock_txns - 1 do
      let t = Tid.of_int i in
      for _ = 1 to lock_ops_per_txn do
        held := (t, op) :: !held
      done
    done;
    for i = 0 to lock_txns - 1 do
      let t = Tid.of_int i in
      ignore
        (List.filter_map
           (fun (holder, o) ->
             if
               (not (Tid.equal holder t))
               && Conflict.conflicts conflict ~requested ~held:o
             then Some holder
             else None)
           !held
        |> List.sort_uniq Tid.compare);
      held := List.filter (fun (h, _) -> not (Tid.equal h t)) !held
    done

let bench_lock_table_indexed () =
  let requested = BA.withdraw_ok 1 in
  let op = BA.deposit 1 in
  fun () ->
    let lt = Tm_engine.Lock_table.create BA.nrbc_conflict in
    for i = 0 to lock_txns - 1 do
      let t = Tid.of_int i in
      for _ = 1 to lock_ops_per_txn do
        Tm_engine.Lock_table.add lt t op
      done
    done;
    for i = 0 to lock_txns - 1 do
      let t = Tid.of_int i in
      ignore (Tm_engine.Lock_table.blockers lt ~requested ~tid:t);
      Tm_engine.Lock_table.release lt t
    done

(* Group commit: the staged commit pipeline under OS threads.  Deposits
   run through [Concurrent.create_durable] over a disk-format WAL whose
   storage backend has a deliberately slow durability barrier;
   concurrency 1 is the per-commit-force baseline, concurrency 8 is
   where the combiner should amortise the barrier (several commits per
   fsync) without losing throughput. *)
module Concurrent = Tm_engine.Concurrent
module Atomic_object = Tm_engine.Atomic_object

let gc_force_delay = 0.0005
let gc_total_txns = 240
let gc_deposit = Op.invocation ~args:[ Value.int 1 ] "deposit"

let gc_run ~concurrency =
  let dw =
    Disk_wal.create (Storage.slow ~force_delay:gc_force_delay (Storage.memory ()))
  in
  let db =
    Concurrent.create_durable ~wal:(Disk_wal.wal dw)
      [
        Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
          ~recovery:Tm_engine.Recovery.UIP ();
      ]
  in
  let per_thread = gc_total_txns / concurrency in
  let backoff = Concurrent.default_backoff () in
  let worker _ =
    for _ = 1 to per_thread do
      ignore
        (Concurrent.with_txn ~max_attempts:1000 ~backoff db (fun h ->
             ignore (Concurrent.invoke h ~obj:"BA" gc_deposit)))
    done
  in
  let t0 = Unix.gettimeofday () in
  let handles = List.init concurrency (fun i -> Thread.create worker i) in
  List.iter Thread.join handles;
  let elapsed = Unix.gettimeofday () -. t0 in
  let reg = Tm_engine.Database.metrics (Concurrent.database db) in
  let commits = Metrics.counter_value reg "tm_txn_committed_total" in
  let forces = Metrics.counter_value reg "tm_wal_forces_total" in
  (commits, forces, elapsed)

let group_commit_pipeline () =
  section "GC — staged commit pipeline: fsyncs per commit vs concurrency";
  Fmt.pr
    "Disk WAL over storage with a %.1f ms durability barrier; %d deposit txns@."
    (gc_force_delay *. 1000.) gc_total_txns;
  Fmt.pr "%12s %10s %10s %15s %12s@." "concurrency" "commits" "fsyncs"
    "forces/commit" "commits/s";
  let row ~concurrency =
    let commits, forces, elapsed = gc_run ~concurrency in
    let ratio =
      if commits = 0 then 0. else float_of_int forces /. float_of_int commits
    in
    let rate = if elapsed <= 0. then 0. else float_of_int commits /. elapsed in
    Fmt.pr "%12d %10d %10d %15.2f %12.0f@." concurrency commits forces ratio rate;
    (ratio, rate)
  in
  let _, base_rate = row ~concurrency:1 in
  let ratio8, rate8 = row ~concurrency:8 in
  Fmt.pr "verdict: forces/commit %.2f at concurrency 8 (target <= 0.5) %s@."
    ratio8
    (if ratio8 <= 0.5 then "OK" else "FAIL");
  Fmt.pr "verdict: throughput %.0f vs baseline %.0f commits/s %s@." rate8
    base_rate
    (if rate8 >= base_rate then "OK" else "FAIL")

(* Sharded engine: thread-per-shard commit throughput.  Each shard's
   WAL sits on storage with the same slow durability barrier as the GC
   section, so the barrier dominates; disjoint-key transactions take the
   single-shard fast path and the per-shard barriers overlap across
   threads — throughput should scale with the shard count.  The cross10
   mix reruns with every 10th transaction spanning two shards, paying
   the 2PC toll (two forced prepares + a forced decision). *)
module SD = Tm_engine.Sharded_database

let sharded_txns_per_thread = 120

(* One object routed to each shard: probe names until every shard has
   one, so the bench never hard-codes the router's hash. *)
let sharded_names n =
  let found = Array.make n None in
  let remaining = ref n in
  let i = ref 0 in
  while !remaining > 0 do
    let name = Fmt.str "BA%d" !i in
    let s = Tm_engine.Wal.partition_of_object ~workers:n name in
    if found.(s) = None then begin
      found.(s) <- Some name;
      decr remaining
    end;
    incr i
  done;
  Array.map Option.get found

let sharded_run ~shards ~cross_pct =
  let wals =
    Array.init shards (fun i ->
        Disk_wal.wal
          (Disk_wal.create ~shard:i
             (Storage.slow ~force_delay:gc_force_delay (Storage.memory ()))))
  in
  let names = sharded_names shards in
  let objs =
    Array.to_list
      (Array.map
         (fun name ->
           Atomic_object.create ~spec:(Spec.rename BA.spec name)
             ~conflict:BA.nrbc_conflict ~recovery:Tm_engine.Recovery.UIP ())
         names)
  in
  let db = SD.create ~wals objs in
  let worker s =
    for k = 1 to sharded_txns_per_thread do
      let t = SD.begin_txn db in
      ignore (SD.invoke db t ~obj:names.(s) gc_deposit);
      if cross_pct > 0 && shards > 1 && k mod (100 / cross_pct) = 0 then
        ignore (SD.invoke db t ~obj:names.((s + 1) mod shards) gc_deposit);
      ignore (SD.try_commit db t)
    done
  in
  let t0 = Unix.gettimeofday () in
  let handles = List.init shards (fun s -> Thread.create worker s) in
  List.iter Thread.join handles;
  let elapsed = Unix.gettimeofday () -. t0 in
  (SD.committed_count db, elapsed)

let sharded_pipeline () =
  section "SHARD — sharded engine: commit rate vs shard count";
  Fmt.pr
    "Per-shard disk WAL over storage with a %.1f ms durability barrier; \
     one driving thread and %d txns per shard@."
    (gc_force_delay *. 1000.)
    sharded_txns_per_thread;
  Fmt.pr "%7s %9s %9s %12s@." "shards" "mix" "commits" "commits/s";
  let row ~shards ~cross_pct mix =
    let commits, elapsed = sharded_run ~shards ~cross_pct in
    let r = if elapsed <= 0. then 0. else float_of_int commits /. elapsed in
    Fmt.pr "%7d %9s %9d %12.0f@." shards mix commits r;
    r
  in
  let rates =
    List.map
      (fun shards ->
        let d = row ~shards ~cross_pct:0 "disjoint" in
        let _ = row ~shards ~cross_pct:10 "cross10" in
        (shards, d))
      [ 1; 2; 4; 8 ]
  in
  let r1 = List.assoc 1 rates and r4 = List.assoc 4 rates in
  Fmt.pr
    "verdict: disjoint-key throughput at 4 shards %.0f vs 1 shard %.0f \
     (target >= 2x) %s@."
    r4 r1
    (if r4 >= 2. *. r1 then "OK" else "FAIL")

(* ------------------------------------------------------------------ *)
(* REC + --json: restart throughput on MB-scale generated logs, and    *)
(* the machine-readable baseline (Bench_baseline) CI diffs against.    *)

module Bench_baseline = Tm_obs.Bench_baseline

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let series name value units higher_is_better =
  { Bench_baseline.name; value; units; higher_is_better }

let rate n t = float_of_int n /. Float.max t 1e-9

(* A deposit-only log big enough that decode/replay rates are
   meaningful: 3 records per transaction spread round-robin over
   [recovery_objects] accounts (so partitioned replay has partitions to
   fill), one transaction in a hundred left in flight so loser
   resolution is exercised too.  Quick mode (CI) is ~10k transactions
   (~1 MB encoded); full is ~50k (~5 MB). *)
let recovery_objects = 16

let recovery_log ~txns =
  let wal = Wal.create () in
  for i = 0 to txns - 1 do
    let t = Tid.of_int i in
    Wal.append wal (Wal.Begin t);
    let obj = Fmt.str "BA%d" (i mod recovery_objects) in
    Wal.append wal
      (Wal.Operation (t, Op.make ~obj ~args:[ Value.int 1 ] "deposit" Value.ok));
    if i mod 100 <> 99 then Wal.append wal (Wal.Commit t)
  done;
  let recs = Wal.records wal in
  (recs, Wal.Codec.encode_all recs)

let recovery_worker_counts = [ 1; 2; 4; 8 ]

let recovery_series ~quick =
  let txns = if quick then 10_000 else 50_000 in
  let recs, bytes = recovery_log ~txns in
  let n_records = List.length recs in
  let n_bytes = String.length bytes in
  let mb = float_of_int n_bytes /. 1_048_576. in
  let decoded, t_decode = timed (fun () -> Wal.Codec.decode_all bytes) in
  (match decoded with
  | Ok d -> assert (List.length d.Wal.Codec.records = n_records)
  | Error _ -> failwith "bench: generated log failed to decode");
  let _, t_replay = timed (fun () -> Wal.replay recs) in
  let rebuild () =
    List.init recovery_objects (fun i ->
        Atomic_object.create
          ~spec:(Spec.rename BA.spec (Fmt.str "BA%d" i))
          ~conflict:BA.nrbc_conflict ~recovery:Tm_engine.Recovery.UIP ())
  in
  (* End-to-end restart (storage read + decode + plan + replay) at each
     worker count; workers = 1 is the serial baseline the parallel rates
     are judged against. *)
  let restart workers =
    let (), t =
      timed (fun () ->
          match Disk_wal.load ~workers (Storage.of_string bytes) with
          | Error _ -> failwith "bench: generated log failed to load"
          | Ok dw -> (
              match
                Tm_engine.Durable_database.recover ~workers
                  ~wal:(Disk_wal.wal dw) ~rebuild ()
              with
              | Ok _ -> ()
              | Error _ -> failwith "bench: generated log failed to recover"))
    in
    t
  in
  let restarts = List.map (fun w -> (w, restart w)) recovery_worker_counts in
  let t_restart = List.assoc 1 restarts in
  [
    series "recovery.log_bytes" (float_of_int n_bytes) "bytes" false;
    series "recovery.decode.records_per_sec" (rate n_records t_decode)
      "records/s" true;
    series "recovery.decode.mb_per_sec" (mb /. Float.max t_decode 1e-9) "MB/s"
      true;
    series "recovery.serial_replay.records_per_sec" (rate n_records t_replay)
      "records/s" true;
    series "recovery.serial_replay.mb_per_sec" (mb /. Float.max t_replay 1e-9)
      "MB/s" true;
    series "recovery.restart.records_per_sec" (rate n_records t_restart)
      "records/s" true;
    series "recovery.restart.seconds" t_restart "s" false;
  ]
  @ List.concat_map
      (fun (w, t) ->
        if w = 1 then []
        else
          [
            series
              (Fmt.str "recovery.restart.w%d.records_per_sec" w)
              (rate n_records t) "records/s" true;
            series (Fmt.str "recovery.restart.w%d.seconds" w) t "s" false;
          ])
      restarts

(* The sharded commit-rate matrix as comparable scalars: shard counts
   1/2/4/8, disjoint keys (fast path) and 10% cross-shard (2PC). *)
let sharded_series () =
  List.concat_map
    (fun shards ->
      List.map
        (fun (mix, cross_pct) ->
          let commits, elapsed = sharded_run ~shards ~cross_pct in
          series
            (Fmt.str "sharded.commit_rate.s%d.%s" shards mix)
            (rate commits elapsed) "commits/s" true)
        [ ("disjoint", 0); ("cross10", 10) ])
    [ 1; 2; 4; 8 ]

(* 2PC resolution at restart: a 4-shard crash image where every
   transaction spans two shards and is cut after its forced Decision but
   before any phase-2 record, so recovery must resolve every prepare
   from decision evidence (Two_phase.analyze + forced outcome appends)
   before ordinary replay. *)
let resolution_txns = 2_000

let resolution_series () =
  let shards = 4 in
  let names = sharded_names shards in
  let logs = Array.make shards [] in
  let push s r = logs.(s) <- r :: logs.(s) in
  for i = 0 to resolution_txns - 1 do
    let t = Tid.of_int (i + 1) in
    let c = i mod shards and p = (i + 1) mod shards in
    List.iter
      (fun s ->
        push s (Wal.Begin t);
        push s
          (Wal.Operation
             (t, Op.make ~obj:names.(s) ~args:[ Value.int 1 ] "deposit" Value.ok));
        push s (Wal.Prepare t))
      [ c; p ];
    push c (Wal.Decision { tid = t; commit = true })
  done;
  let records = Array.map List.rev logs in
  let rebuild () =
    Array.to_list
      (Array.map
         (fun name ->
           Atomic_object.create ~spec:(Spec.rename BA.spec name)
             ~conflict:BA.nrbc_conflict ~recovery:Tm_engine.Recovery.UIP ())
         names)
  in
  let resolved = ref 0 in
  let once () =
    timed (fun () ->
        match
          SD.recover
            ~audit:(fun evs -> resolved := List.length evs)
            ~wals:(Array.map Wal.of_records records)
            ~rebuild ()
        with
        | Ok _ -> ()
        | Error _ -> failwith "bench: resolution image failed to recover")
  in
  (* the timed region is ~10 ms; best-of-3 keeps the gated series out of
     scheduler-noise territory *)
  let t =
    List.fold_left
      (fun best () -> Float.min best (snd (once ())))
      Float.max_float [ (); (); () ]
  in
  (* one in-doubt prepare per participating shard per transaction *)
  assert (!resolved = 2 * resolution_txns);
  [
    series
      (Fmt.str "sharded.recovery_resolution.s%d" shards)
      (rate !resolved t) "resolutions/s" true;
  ]

(* The deterministic and throughput series riding along: scheduler
   rounds are exactly reproducible (fixed seed), the group-commit pair
   restates the GC section's verdicts as comparable scalars. *)
let baseline_series ~quick () =
  let recovery = recovery_series ~quick in
  let commits, forces, elapsed = gc_run ~concurrency:8 in
  let rounds setup =
    let row = Experiment.run Experiment.bank_hotspot setup cfg in
    assert row.Experiment.consistent;
    float_of_int row.Experiment.stats.Scheduler.rounds
  in
  recovery
  @ sharded_series ()
  @ resolution_series ()
  @ [
      series "wal.group_commit.commits_per_sec" (rate commits elapsed)
        "commits/s" true;
      series "wal.group_commit.forces_per_commit"
        (float_of_int forces /. Float.max (float_of_int commits) 1.)
        "forces/commit" false;
      series "sim.bank_hotspot.uip_nrbc.rounds"
        (rounds (Experiment.setup Tm_engine.Recovery.UIP Experiment.Semantic))
        "rounds" false;
      series "sim.bank_hotspot.du_nfc.rounds"
        (rounds (Experiment.setup Tm_engine.Recovery.DU Experiment.Semantic))
        "rounds" false;
    ]

let recovery_bench ~quick () =
  section "REC — restart throughput on a generated MB-scale log";
  List.iter
    (fun (s : Bench_baseline.series) ->
      Fmt.pr "%-44s %14.4g %s@." s.name s.value s.units)
    (recovery_series ~quick)

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "dev"
  with _ -> "dev"

let write_baseline ~file ~quick =
  let rev = git_rev () in
  let file =
    match file with "auto" -> Fmt.str "BENCH_%s.json" rev | f -> f
  in
  let b =
    Bench_baseline.make
      ~context:[ ("quick", string_of_bool quick) ]
      ~rev
      (baseline_series ~quick ())
  in
  let oc = open_out file in
  output_string oc (Bench_baseline.to_string b);
  close_out oc;
  Fmt.pr "wrote %s (%d series, rev %s)@." file
    (List.length b.Bench_baseline.series)
    rev

let micro_benchmarks () =
  section "MICRO — engine operation cost (Bechamel, monotonic clock)";
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"engine" ~fmt:"%s %s"
      [
        Test.make ~name:"invoke+commit UIP+NRBC"
          (Staged.stage (bench_engine_op Tm_engine.Recovery.UIP BA.nrbc_conflict));
        Test.make ~name:"invoke+commit DU+NFC"
          (Staged.stage (bench_engine_op Tm_engine.Recovery.DU BA.nfc_conflict));
        Test.make ~name:"invoke+commit UIP+RW"
          (Staged.stage (bench_engine_op Tm_engine.Recovery.UIP BA.rw_conflict));
        Test.make ~name:"FC decision (depth 4)" (Staged.stage (bench_decision ()));
        Test.make ~name:"UIP view on 20-op history" (Staged.stage (bench_view View.uip));
        Test.make ~name:"DU view on 20-op history" (Staged.stage (bench_view View.du));
        Test.make ~name:"abort via replay (200-op log)" (Staged.stage (bench_abort ()));
        Test.make ~name:"abort via inverse (200-op log)"
          (Staged.stage (bench_abort ~inverse:BA.inverse ()));
        Test.make ~name:"WAL replay (200-txn log)" (Staged.stage (bench_wal_replay ()));
        Test.make ~name:"WAL fuzzy checkpoint (200-txn log)"
          (Staged.stage (bench_wal_checkpoint ()));
        Test.make ~name:"WAL checkpoint+truncate cycle"
          (Staged.stage (bench_wal_truncate ()));
        Test.make ~name:"WAL encode (200-txn log)" (Staged.stage (bench_wal_encode ()));
        Test.make ~name:"WAL append to storage (200-txn log)"
          (Staged.stage (bench_disk_append ()));
        Test.make ~name:"WAL replay from storage (200-txn log)"
          (Staged.stage (bench_disk_replay ()));
        Test.make ~name:"lock table 64x4 holds (list scan)"
          (Staged.stage (bench_lock_table_list ()));
        Test.make ~name:"lock table 64x4 holds (tid index)"
          (Staged.stage (bench_lock_table_indexed ()));
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg [ instance ] tests in
    Analyze.all ols instance raw
  in
  let results = benchmark () in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Fmt.pr "%-40s %12.1f ns/op@." name est
      | _ -> Fmt.pr "%-40s (no estimate)@." name)
    results

let run_full ~quick () =
  Fmt.pr "Reproduction harness: Weihl, \"The Impact of Recovery on Concurrency Control\" (1989)@.";
  figure_6_1 ();
  figure_6_2 ();
  example_3_3 ();
  example_5_1 ();
  theorem_9 ();
  theorem_10 ();
  incomparability ();
  c1a ();
  c1b ();
  c1c ();
  c1d ();
  c1e ();
  abl_nrbc_refinements ();
  abl_escrow ();
  abl_occ_contention ();
  ext_views ();
  obs_breakdown ();
  obs_analytics ();
  recovery_bench ~quick ();
  group_commit_pipeline ();
  sharded_pipeline ();
  micro_benchmarks ()

let main json quick =
  match json with
  | Some file -> write_baseline ~file ~quick
  | None -> run_full ~quick ()

open Cmdliner

let json_arg =
  Arg.(
    value
    & opt ~vopt:(Some "auto") (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Skip the text harness and write the machine-readable bench \
           baseline (tm-bench JSON) to $(docv); without a value the file \
           is named BENCH_<rev>.json after the current git revision.  \
           Compare two baselines with bin/benchdiff.exe.")

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "Shrink the generated recovery logs (~1 MB instead of ~5 MB) so \
           the baseline is cheap enough for CI.")

let cmd =
  let doc = "reproduction harness and benchmarks for the Weihl '89 repo" in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const main $ json_arg $ quick_arg)

let () = exit (Cmd.eval cmd)
