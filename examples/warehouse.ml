(* Warehouse: a small multi-object application on the threads runtime.

   Three ADTs cooperate in one transactional store:
   - stock pools per item (bounded counters — escrow-style updates),
   - customer accounts (the paper's bank account),
   - an order feed (semiqueue — commutative enqueues).

   Order transactions touch three objects atomically: reserve stock,
   charge the customer, publish the order.  Eight OS threads place orders
   and restock concurrently through Tm_engine.Concurrent (blocking
   commutativity locks, deadlock victims retried); at the end the books
   must balance exactly and every object must replay its committed
   operations legally.

   Run with: dune exec examples/warehouse.exe *)

open Tm_core
module Object = Tm_engine.Atomic_object
module Concurrent = Tm_engine.Concurrent

let items = 3
let customers = 2
let item_name i = Fmt.str "ITEM%d" i
let acct_name c = Fmt.str "ACCT%d" c
let price = 2 (* per unit *)

module Stock = Tm_adt.Bounded_counter.Make (struct
  let capacity = 1_000_000
  let initial = 500
  let name = "ITEM"
end)

let objects () =
  List.init items (fun i ->
      Object.create
        ~spec:(Spec.rename Stock.spec (item_name i))
        ~conflict:Stock.nrbc_conflict ~recovery:Tm_engine.Recovery.UIP ())
  @ List.init customers (fun c ->
        Object.create
          ~spec:(Spec.rename (Tm_adt.Bank_account.spec_with_initial 10_000) (acct_name c))
          ~conflict:Tm_adt.Bank_account.nrbc_conflict ~recovery:Tm_engine.Recovery.UIP ())
  @ [
      Object.create ~spec:Tm_adt.Semiqueue.spec ~conflict:Tm_adt.Semiqueue.nfc_conflict
        ~recovery:Tm_engine.Recovery.DU ();
    ]

let () =
  Fmt.pr "Warehouse: 8 threads, 3 stock pools + 2 accounts + 1 order feed@.@.";
  let db = Concurrent.create (objects ()) in
  let placed = Array.make items 0 and restocked = Array.make items 0 in
  let spent = Array.make customers 0 in
  let tally = Mutex.create () in
  let threads =
    List.init 8 (fun t ->
        Thread.create
          (fun () ->
            let rng = Random.State.make [| 1000 + t |] in
            for _ = 1 to 25 do
              let item = Random.State.int rng items in
              if Random.State.int rng 100 < 25 then begin
                (* restock *)
                let qty = 5 + Random.State.int rng 5 in
                match
                  Concurrent.with_txn ~max_attempts:2000 db (fun h ->
                      ignore
                        (Concurrent.invoke h ~obj:(item_name item)
                           (Op.invocation ~args:[ Value.int qty ] "incr")))
                with
                | Ok () ->
                    Mutex.lock tally;
                    restocked.(item) <- restocked.(item) + qty;
                    Mutex.unlock tally
                | Error (`Gave_up _) -> ()
              end
              else begin
                (* order: reserve stock, charge customer, publish *)
                let qty = 1 + Random.State.int rng 3 in
                let customer = Random.State.int rng customers in
                match
                  Concurrent.with_txn ~max_attempts:2000 db (fun h ->
                      let reserved =
                        Concurrent.invoke h ~obj:(item_name item)
                          (Op.invocation ~args:[ Value.int qty ] "decr")
                      in
                      if not (Value.equal reserved Value.ok) then None
                      else
                        let charged =
                          Concurrent.invoke h ~obj:(acct_name customer)
                            (Op.invocation ~args:[ Value.int (qty * price) ] "withdraw")
                        in
                        if not (Value.equal charged Value.ok) then failwith "insufficient funds"
                        else begin
                          ignore
                            (Concurrent.invoke h ~obj:"SQ"
                               (Op.invocation ~args:[ Value.int item ] "enq"));
                          Some (qty, customer)
                        end)
                with
                | Ok (Some (qty, customer)) ->
                    Mutex.lock tally;
                    placed.(item) <- placed.(item) + qty;
                    spent.(customer) <- spent.(customer) + (qty * price);
                    Mutex.unlock tally
                | Ok None | Error (`Gave_up _) -> ()
              end
            done)
          ())
  in
  List.iter Thread.join threads;

  Fmt.pr "committed transactions: %d (aborted and retried: %d)@.@."
    (Concurrent.committed_count db) (Concurrent.aborted_count db);
  let read_int obj inv =
    match Concurrent.with_txn db (fun h -> Concurrent.invoke h ~obj inv) with
    | Ok (Value.Int n) -> n
    | _ -> failwith "read failed"
  in
  let ok = ref true in
  for i = 0 to items - 1 do
    let level = read_int (item_name i) (Op.invocation "read") in
    let expect = 500 + restocked.(i) - placed.(i) in
    Fmt.pr "%s: stock %5d (expected %5d) %s@." (item_name i) level expect
      (if level = expect then "\xe2\x9c\x93" else "\xe2\x9c\x97");
    if level <> expect then ok := false
  done;
  for c = 0 to customers - 1 do
    let bal = read_int (acct_name c) (Op.invocation "balance") in
    let expect = 10_000 - spent.(c) in
    Fmt.pr "%s: balance %4d (expected %4d) %s@." (acct_name c) bal expect
      (if bal = expect then "\xe2\x9c\x93" else "\xe2\x9c\x97");
    if bal <> expect then ok := false
  done;
  let replay_ok =
    List.for_all
      (fun o -> Spec.legal (Object.spec o) (Object.committed_ops o))
      (Tm_engine.Database.objects (Concurrent.database db))
  in
  Fmt.pr "@.books balance: %b; every object replays its committed ops legally: %b@." !ok
    replay_ok;
  if not (!ok && replay_ok) then exit 1
