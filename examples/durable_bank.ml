(* Durable bank: crash recovery with a write-ahead log.

   The paper confines itself to abort recovery and observes that crash
   recovery mechanisms mirror it; this example exercises the engine's
   WAL-based implementation of that future work.  A bank account takes
   deposits and withdrawals; the machine "crashes" with a transaction in
   flight; recovery replays the log — committed work survives, the
   in-flight transaction is a loser, and the recovered object keeps
   serving.

   Run with: dune exec examples/durable_bank.exe *)

open Tm_core
module BA = Tm_adt.Bank_account
module Wal = Tm_engine.Wal
module Durable = Tm_engine.Durable_object
module Object = Tm_engine.Atomic_object

let deposit i = Op.invocation ~args:[ Value.int i ] "deposit"
let withdraw i = Op.invocation ~args:[ Value.int i ] "withdraw"
let balance = Op.invocation "balance"

let show tid what outcome =
  Fmt.pr "  %a %-12s -> %a@." Tid.pp tid what Object.pp_outcome outcome

let () =
  Fmt.pr "Durable bank account (write-ahead logging)@.@.";
  let wal = Wal.create () in
  let account =
    Durable.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
      ~recovery:Tm_engine.Recovery.UIP ~wal
  in

  Fmt.pr "running transactions:@.";
  show Tid.a "deposit 100" (Durable.invoke account Tid.a (deposit 100));
  Durable.commit account Tid.a;
  show Tid.b "deposit 40" (Durable.invoke account Tid.b (deposit 40));
  Durable.commit account Tid.b;
  Durable.checkpoint account;
  show Tid.c "withdraw 30" (Durable.invoke account Tid.c (withdraw 30));
  Durable.commit account Tid.c;
  (* D is still running when the machine dies *)
  show Tid.d "deposit 999" (Durable.invoke account Tid.d (deposit 999));

  Fmt.pr "@.log (%d records):@." (Wal.length wal);
  List.iter (fun r -> Fmt.pr "  %a@." Wal.pp_record r) (Wal.records wal);

  Fmt.pr "@.*** CRASH *** (volatile state lost; the log survives)@.@.";
  let recovered, losers =
    match
      Durable.recover ~spec:BA.spec ~conflict:BA.nrbc_conflict
        ~recovery:Tm_engine.Recovery.UIP wal
    with
    | Ok x -> x
    | Error e -> Fmt.failwith "recovery failed: %a" Tm_engine.Recovery.pp_error e
  in
  Fmt.pr "losers (no commit record): %a@."
    Fmt.(list ~sep:comma Tid.pp)
    (Tid.Set.elements losers);
  Fmt.pr "recovered committed work: %a@."
    Fmt.(list ~sep:(any "; ") Op.pp_short)
    (Durable.committed_ops recovered);
  let t = Tid.of_int 10 in
  show t "balance" (Durable.invoke recovered t balance);
  Durable.commit recovered t;
  Fmt.pr "@.committed work replays legally: %b@."
    (Spec.legal BA.spec (Durable.committed_ops recovered))
