(* The threads-based blocking runtime: real OS threads against one
   engine, with blocking, deadlock victimisation and transparent retry.
   Correctness witnesses: final balances equal the sum of committed
   effects, committed operations replay legally, and small recorded
   histories are dynamic atomic. *)

open Tm_core
module Atomic_object = Tm_engine.Atomic_object
module Concurrent = Tm_engine.Concurrent
module BA = Tm_adt.Bank_account

let deposit i = Op.invocation ~args:[ Value.int i ] "deposit"
let withdraw i = Op.invocation ~args:[ Value.int i ] "withdraw"
let balance = Op.invocation "balance"

let make_db ?(recovery = Tm_engine.Recovery.UIP) ?(initial = 0) ?record_history () =
  let conflict =
    match recovery with
    | Tm_engine.Recovery.UIP -> BA.nrbc_conflict
    | Tm_engine.Recovery.DU -> BA.nfc_conflict
  in
  let spec = if initial = 0 then BA.spec else BA.spec_with_initial initial in
  (Concurrent.create ?record_history
     [ Atomic_object.create ~spec ~conflict ~recovery () ],
   spec)

let test_single_thread_txn () =
  let db, _spec = make_db () in
  let result =
    Concurrent.with_txn db (fun h ->
        let r1 = Concurrent.invoke h ~obj:"BA" (deposit 5) in
        let r2 = Concurrent.invoke h ~obj:"BA" balance in
        (r1, r2))
  in
  match result with
  | Ok (r1, r2) ->
      Alcotest.check Helpers.value "ok" Value.ok r1;
      Alcotest.check Helpers.value "balance 5" (Value.int 5) r2;
      Helpers.check_int "committed" 1 (Concurrent.committed_count db)
  | Error (`Gave_up _) -> Alcotest.fail "aborted"

let test_user_exception_aborts () =
  let db, _spec = make_db () in
  (try
     ignore
       (Concurrent.with_txn db (fun h ->
            ignore (Concurrent.invoke h ~obj:"BA" (deposit 5));
            failwith "user bug"))
   with Failure _ -> ());
  Helpers.check_int "aborted" 1 (Concurrent.aborted_count db);
  (* the deposit was rolled back *)
  match Concurrent.with_txn db (fun h -> Concurrent.invoke h ~obj:"BA" balance) with
  | Ok v -> Alcotest.check Helpers.value "balance 0" (Value.int 0) v
  | Error (`Gave_up _) -> Alcotest.fail "aborted"

let run_threads n f =
  let threads = List.init n (fun i -> Thread.create f i) in
  List.iter Thread.join threads

let test_parallel_deposits () =
  let db, spec = make_db ~recovery:Tm_engine.Recovery.UIP () in
  let per_thread = 20 and threads = 6 in
  run_threads threads (fun _ ->
      for _ = 1 to per_thread do
        match
          Concurrent.with_txn db (fun h ->
              ignore (Concurrent.invoke h ~obj:"BA" (deposit 1)))
        with
        | Ok () -> ()
        | Error (`Gave_up _) -> ()
      done);
  let committed = Concurrent.committed_count db in
  match Concurrent.with_txn db (fun h -> Concurrent.invoke h ~obj:"BA" balance) with
  | Ok (Value.Int b) ->
      (* every committed transaction deposited exactly 1 *)
      Helpers.check_int "balance = committed deposits" committed b;
      Helpers.check_int "no aborts for commuting work" (threads * per_thread) committed;
      let objs = Tm_engine.Database.objects (Concurrent.database db) in
      Helpers.check_bool "replay" true
        (List.for_all
           (fun o -> Spec.legal spec (Atomic_object.committed_ops o))
           objs)
  | Ok v -> Alcotest.failf "unexpected balance %a" Value.pp v
  | Error (`Gave_up _) -> Alcotest.fail "balance txn aborted"

let test_parallel_mixed_with_deadlocks () =
  (* deposits and withdrawals conflict asymmetrically under NRBC: this
     mix produces real blocking and deadlock victims; with retry all
     programs eventually commit and the books must balance. *)
  let db, spec = make_db ~recovery:Tm_engine.Recovery.UIP ~initial:1000 () in
  let deposits = ref 0 and withdrawals = ref 0 in
  let lock = Mutex.create () in
  let add r a =
    Mutex.lock lock;
    r := !r + a;
    Mutex.unlock lock
  in
  run_threads 8 (fun i ->
      for k = 1 to 10 do
        let amount = 1 + ((i + k) mod 3) in
        let is_deposit = (i + k) mod 2 = 0 in
        match
          Concurrent.with_txn ~max_attempts:1000 db (fun h ->
              let inv = if is_deposit then deposit amount else withdraw amount in
              let res = Concurrent.invoke h ~obj:"BA" inv in
              (* with 1000 in the pot, withdrawals always succeed *)
              if (not is_deposit) && not (Value.equal res Value.ok) then
                Alcotest.failf "unexpected refusal %a" Value.pp res;
              amount)
        with
        | Ok a -> if is_deposit then add deposits a else add withdrawals a
        | Error (`Gave_up _) -> Alcotest.fail "starved"
      done);
  match Concurrent.with_txn db (fun h -> Concurrent.invoke h ~obj:"BA" balance) with
  | Ok (Value.Int b) ->
      Helpers.check_int "conservation of money" (1000 + !deposits - !withdrawals) b;
      let objs = Tm_engine.Database.objects (Concurrent.database db) in
      Helpers.check_bool "replay" true
        (List.for_all (fun o -> Spec.legal spec (Atomic_object.committed_ops o)) objs)
  | Ok v -> Alcotest.failf "unexpected balance %a" Value.pp v
  | Error (`Gave_up _) -> Alcotest.fail "balance txn aborted"

let test_occ_threads () =
  let spec = BA.spec_with_initial 1000 in
  let db =
    Concurrent.create
      [ Atomic_object.create_optimistic ~spec ~conflict:BA.nfc_conflict ]
  in
  run_threads 6 (fun i ->
      for k = 1 to 10 do
        let amount = 1 + ((i * k) mod 3) in
        match
          Concurrent.with_txn ~max_attempts:1000 db (fun h ->
              ignore (Concurrent.invoke h ~obj:"BA" (withdraw amount)))
        with
        | Ok () -> ()
        | Error (`Gave_up _) -> Alcotest.fail "starved"
      done);
  let objs = Tm_engine.Database.objects (Concurrent.database db) in
  Helpers.check_bool "replay" true
    (List.for_all (fun o -> Spec.legal spec (Atomic_object.committed_ops o)) objs)

let test_recorded_history_dynamic_atomic () =
  let db, spec = make_db ~recovery:Tm_engine.Recovery.DU ~initial:10 ~record_history:true () in
  run_threads 3 (fun i ->
      match
        Concurrent.with_txn ~max_attempts:1000 db (fun h ->
            ignore (Concurrent.invoke h ~obj:"BA" (if i = 0 then deposit 2 else withdraw 1)))
      with
      | Ok () -> ()
      | Error (`Gave_up _) -> ());
  let env = Atomicity.env_of_list [ spec ] in
  Helpers.check_bool "dynamic atomic" true
    (Atomicity.is_dynamic_atomic env (Concurrent.history db))

let suite =
  [
    Alcotest.test_case "single-thread transaction" `Quick test_single_thread_txn;
    Alcotest.test_case "user exception aborts" `Quick test_user_exception_aborts;
    Alcotest.test_case "parallel deposits" `Slow test_parallel_deposits;
    Alcotest.test_case "parallel mix with deadlocks" `Slow test_parallel_mixed_with_deadlocks;
    Alcotest.test_case "optimistic threads" `Slow test_occ_threads;
    Alcotest.test_case "recorded history dynamic atomic" `Quick
      test_recorded_history_dynamic_atomic;
  ]
