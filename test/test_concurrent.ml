(* The threads-based blocking runtime: real OS threads against one
   engine, with blocking, deadlock victimisation and transparent retry.
   Correctness witnesses: final balances equal the sum of committed
   effects, committed operations replay legally, and small recorded
   histories are dynamic atomic. *)

open Tm_core
module Atomic_object = Tm_engine.Atomic_object
module Concurrent = Tm_engine.Concurrent
module BA = Tm_adt.Bank_account

let deposit i = Op.invocation ~args:[ Value.int i ] "deposit"
let withdraw i = Op.invocation ~args:[ Value.int i ] "withdraw"
let balance = Op.invocation "balance"

let make_db ?(recovery = Tm_engine.Recovery.UIP) ?(initial = 0) ?record_history () =
  let conflict =
    match recovery with
    | Tm_engine.Recovery.UIP -> BA.nrbc_conflict
    | Tm_engine.Recovery.DU -> BA.nfc_conflict
  in
  let spec = if initial = 0 then BA.spec else BA.spec_with_initial initial in
  (Concurrent.create ?record_history
     [ Atomic_object.create ~spec ~conflict ~recovery () ],
   spec)

let test_single_thread_txn () =
  let db, _spec = make_db () in
  let result =
    Concurrent.with_txn db (fun h ->
        let r1 = Concurrent.invoke h ~obj:"BA" (deposit 5) in
        let r2 = Concurrent.invoke h ~obj:"BA" balance in
        (r1, r2))
  in
  match result with
  | Ok (r1, r2) ->
      Alcotest.check Helpers.value "ok" Value.ok r1;
      Alcotest.check Helpers.value "balance 5" (Value.int 5) r2;
      Helpers.check_int "committed" 1 (Concurrent.committed_count db)
  | Error (`Gave_up _) -> Alcotest.fail "aborted"

let test_user_exception_aborts () =
  let db, _spec = make_db () in
  (try
     ignore
       (Concurrent.with_txn db (fun h ->
            ignore (Concurrent.invoke h ~obj:"BA" (deposit 5));
            failwith "user bug"))
   with Failure _ -> ());
  Helpers.check_int "aborted" 1 (Concurrent.aborted_count db);
  (* the deposit was rolled back *)
  match Concurrent.with_txn db (fun h -> Concurrent.invoke h ~obj:"BA" balance) with
  | Ok v -> Alcotest.check Helpers.value "balance 0" (Value.int 0) v
  | Error (`Gave_up _) -> Alcotest.fail "aborted"

let run_threads n f =
  let threads = List.init n (fun i -> Thread.create f i) in
  List.iter Thread.join threads

let test_parallel_deposits () =
  let db, spec = make_db ~recovery:Tm_engine.Recovery.UIP () in
  let per_thread = 20 and threads = 6 in
  run_threads threads (fun _ ->
      for _ = 1 to per_thread do
        match
          Concurrent.with_txn db (fun h ->
              ignore (Concurrent.invoke h ~obj:"BA" (deposit 1)))
        with
        | Ok () -> ()
        | Error (`Gave_up _) -> ()
      done);
  let committed = Concurrent.committed_count db in
  match Concurrent.with_txn db (fun h -> Concurrent.invoke h ~obj:"BA" balance) with
  | Ok (Value.Int b) ->
      (* every committed transaction deposited exactly 1 *)
      Helpers.check_int "balance = committed deposits" committed b;
      Helpers.check_int "no aborts for commuting work" (threads * per_thread) committed;
      let objs = Tm_engine.Database.objects (Concurrent.database db) in
      Helpers.check_bool "replay" true
        (List.for_all
           (fun o -> Spec.legal spec (Atomic_object.committed_ops o))
           objs)
  | Ok v -> Alcotest.failf "unexpected balance %a" Value.pp v
  | Error (`Gave_up _) -> Alcotest.fail "balance txn aborted"

let test_parallel_mixed_with_deadlocks () =
  (* deposits and withdrawals conflict asymmetrically under NRBC: this
     mix produces real blocking and deadlock victims; with retry all
     programs eventually commit and the books must balance. *)
  let db, spec = make_db ~recovery:Tm_engine.Recovery.UIP ~initial:1000 () in
  let deposits = ref 0 and withdrawals = ref 0 in
  let lock = Mutex.create () in
  let add r a =
    Mutex.lock lock;
    r := !r + a;
    Mutex.unlock lock
  in
  run_threads 8 (fun i ->
      for k = 1 to 10 do
        let amount = 1 + ((i + k) mod 3) in
        let is_deposit = (i + k) mod 2 = 0 in
        match
          Concurrent.with_txn ~max_attempts:1000 db (fun h ->
              let inv = if is_deposit then deposit amount else withdraw amount in
              let res = Concurrent.invoke h ~obj:"BA" inv in
              (* with 1000 in the pot, withdrawals always succeed *)
              if (not is_deposit) && not (Value.equal res Value.ok) then
                Alcotest.failf "unexpected refusal %a" Value.pp res;
              amount)
        with
        | Ok a -> if is_deposit then add deposits a else add withdrawals a
        | Error (`Gave_up _) -> Alcotest.fail "starved"
      done);
  match Concurrent.with_txn db (fun h -> Concurrent.invoke h ~obj:"BA" balance) with
  | Ok (Value.Int b) ->
      Helpers.check_int "conservation of money" (1000 + !deposits - !withdrawals) b;
      let objs = Tm_engine.Database.objects (Concurrent.database db) in
      Helpers.check_bool "replay" true
        (List.for_all (fun o -> Spec.legal spec (Atomic_object.committed_ops o)) objs)
  | Ok v -> Alcotest.failf "unexpected balance %a" Value.pp v
  | Error (`Gave_up _) -> Alcotest.fail "balance txn aborted"

let test_occ_threads () =
  let spec = BA.spec_with_initial 1000 in
  let db =
    Concurrent.create
      [ Atomic_object.create_optimistic ~spec ~conflict:BA.nfc_conflict ]
  in
  run_threads 6 (fun i ->
      for k = 1 to 10 do
        let amount = 1 + ((i * k) mod 3) in
        match
          Concurrent.with_txn ~max_attempts:1000 db (fun h ->
              ignore (Concurrent.invoke h ~obj:"BA" (withdraw amount)))
        with
        | Ok () -> ()
        | Error (`Gave_up _) -> Alcotest.fail "starved"
      done);
  let objs = Tm_engine.Database.objects (Concurrent.database db) in
  Helpers.check_bool "replay" true
    (List.for_all (fun o -> Spec.legal spec (Atomic_object.committed_ops o)) objs)

let test_recorded_history_dynamic_atomic () =
  let db, spec = make_db ~recovery:Tm_engine.Recovery.DU ~initial:10 ~record_history:true () in
  run_threads 3 (fun i ->
      match
        Concurrent.with_txn ~max_attempts:1000 db (fun h ->
            ignore (Concurrent.invoke h ~obj:"BA" (if i = 0 then deposit 2 else withdraw 1)))
      with
      | Ok () -> ()
      | Error (`Gave_up _) -> ());
  let env = Atomicity.env_of_list [ spec ] in
  Helpers.check_bool "dynamic atomic" true
    (Atomicity.is_dynamic_atomic env (Concurrent.history db))

(* --- the staged commit pipeline under OS threads --- *)

let test_durable_group_commit_threads () =
  (* N threads commit through a disk-format WAL whose storage has a slow
     durability barrier.  The committed state must match the serial
     expectation, the device must have seen fewer barriers than commits
     (batching formed), and the bytes on storage must replay to exactly
     the acknowledged commits. *)
  let store = Tm_engine.Storage.memory () in
  let dw =
    Tm_engine.Disk_wal.create (Tm_engine.Storage.slow ~force_delay:0.001 store)
  in
  let db =
    Concurrent.create_durable ~wal:(Tm_engine.Disk_wal.wal dw)
      [
        Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
          ~recovery:Tm_engine.Recovery.UIP ();
      ]
  in
  let threads = 6 and per_thread = 15 in
  run_threads threads (fun _ ->
      for _ = 1 to per_thread do
        match
          Concurrent.with_txn ~max_attempts:1000 db (fun h ->
              ignore (Concurrent.invoke h ~obj:"BA" (deposit 1)))
        with
        | Ok () -> ()
        | Error (`Gave_up _) -> Alcotest.fail "starved"
      done);
  let deposits = Concurrent.committed_count db in
  Helpers.check_int "every transaction committed" (threads * per_thread) deposits;
  (match Concurrent.with_txn db (fun h -> Concurrent.invoke h ~obj:"BA" balance) with
  | Ok (Value.Int b) -> Helpers.check_int "balance = committed deposits" deposits b
  | Ok v -> Alcotest.failf "unexpected balance %a" Value.pp v
  | Error (`Gave_up _) -> Alcotest.fail "balance txn aborted");
  let committed = Concurrent.committed_count db in
  let reg = Tm_engine.Database.metrics (Concurrent.database db) in
  let forces = Tm_obs.Metrics.counter_value reg "tm_wal_forces_total" in
  Helpers.check_bool
    (Fmt.str "batching formed: %d fsyncs for %d commits" forces committed)
    true
    (forces < committed);
  match Tm_engine.Disk_wal.load store with
  | Error c ->
      Alcotest.failf "persisted log corrupt: %a" Tm_engine.Wal.Codec.pp_corruption c
  | Ok reloaded ->
      let committed_ops, _ =
        Tm_engine.Wal.replay
          (Tm_engine.Wal.records (Tm_engine.Disk_wal.wal reloaded))
      in
      (* one op per committed transaction (deposits + the balance read) *)
      Helpers.check_int "device replays every acknowledged commit" committed
        (List.length committed_ops)

let test_flusher_death_wakes_parked_committer () =
  (* Regression: commit A becomes the flusher and its fsync dies; commit
     B is parked on the watermark.  B must be woken by the failure
     broadcast and take over as flusher — not sleep forever — and A must
     see the device error. *)
  let wal = Tm_engine.Wal.create () in
  let calls = ref 0 in
  let m = Mutex.create () in
  let sink =
    {
      Tm_engine.Wal.sink_append = (fun _ -> ());
      sink_force =
        (fun () ->
          let n =
            Mutex.lock m;
            incr calls;
            let n = !calls in
            Mutex.unlock m;
            n
          in
          if n = 1 then begin
            (* stay busy long enough for B to park, then die *)
            Thread.delay 0.05;
            failwith "device died"
          end);
      sink_attach = (fun _ -> ());
    }
  in
  Tm_engine.Wal.set_sink wal sink;
  let db =
    Concurrent.create_durable ~wal
      [
        Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
          ~recovery:Tm_engine.Recovery.UIP ();
      ]
  in
  let a_saw_failure = ref false and b_committed = ref false in
  let a =
    Thread.create
      (fun () ->
        match
          Concurrent.with_txn db (fun h ->
              ignore (Concurrent.invoke h ~obj:"BA" (deposit 1)))
        with
        | exception Failure _ -> a_saw_failure := true
        | Ok () | Error (`Gave_up _) -> ())
      ()
  in
  let b =
    Thread.create
      (fun () ->
        Thread.delay 0.02;
        match
          Concurrent.with_txn db (fun h ->
              ignore (Concurrent.invoke h ~obj:"BA" (deposit 2)))
        with
        | Ok () -> b_committed := true
        | Error (`Gave_up _) -> ())
      ()
  in
  Thread.join a;
  Thread.join b;
  Helpers.check_bool "the failed flusher saw the device error" true !a_saw_failure;
  Helpers.check_bool "the parked committer took over and committed" true
    !b_committed;
  Helpers.check_int "watermark covers both commits"
    (Tm_engine.Wal.last_lsn wal)
    (Tm_engine.Wal.flushed_lsn wal)

let test_futile_wakeup_counted () =
  (* B blocks on A's hold at one object; an unrelated commit at another
     object broadcasts the monitor, waking B to find itself still
     blocked — tm_futile_wakeups_total must record it. *)
  let funded = BA.spec_with_initial 100 in
  let db =
    Concurrent.create
      [
        Atomic_object.create ~spec:funded ~conflict:BA.nrbc_conflict
          ~recovery:Tm_engine.Recovery.UIP ();
        Atomic_object.create
          ~spec:(Spec.rename funded "BA2")
          ~conflict:BA.nrbc_conflict ~recovery:Tm_engine.Recovery.UIP ();
      ]
  in
  let check label = function
    | Ok _ -> ()
    | Error (`Gave_up _) -> Alcotest.failf "%s gave up" label
  in
  let a =
    Thread.create
      (fun () ->
        check "A"
          (Concurrent.with_txn db (fun h ->
               (* hold the deposit lock while B blocks and C commits *)
               ignore (Concurrent.invoke h ~obj:"BA" (deposit 1));
               Thread.delay 0.08)))
      ()
  in
  let b =
    Thread.create
      (fun () ->
        Thread.delay 0.02;
        (* a successful withdrawal conflicts with A's held deposit *)
        check "B"
          (Concurrent.with_txn ~max_attempts:1000 db (fun h ->
               ignore (Concurrent.invoke h ~obj:"BA" (withdraw 1)))))
      ()
  in
  let c =
    Thread.create
      (fun () ->
        Thread.delay 0.04;
        check "C"
          (Concurrent.with_txn db (fun h ->
               ignore (Concurrent.invoke h ~obj:"BA2" (deposit 1)))))
      ()
  in
  Thread.join a;
  Thread.join b;
  Thread.join c;
  Helpers.check_int "all three committed" 3 (Concurrent.committed_count db);
  Helpers.check_bool "futile wakeup counted" true
    (Concurrent.futile_wakeup_count db >= 1)

let test_default_backoff () =
  let hook = Concurrent.default_backoff ~base:1e-6 ~cap:1e-5 () in
  (* bounded and total over any attempt number (no float overflow) *)
  List.iter hook [ 1; 2; 3; 10; 30; 1000 ];
  (try
     ignore (Concurrent.default_backoff ~base:0. () : int -> unit);
     Alcotest.fail "base must be positive"
   with Invalid_argument _ -> ());
  try
    ignore (Concurrent.default_backoff ~base:0.1 ~cap:0.01 () : int -> unit);
    Alcotest.fail "cap must dominate base"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "single-thread transaction" `Quick test_single_thread_txn;
    Alcotest.test_case "user exception aborts" `Quick test_user_exception_aborts;
    Alcotest.test_case "parallel deposits" `Slow test_parallel_deposits;
    Alcotest.test_case "parallel mix with deadlocks" `Slow test_parallel_mixed_with_deadlocks;
    Alcotest.test_case "optimistic threads" `Slow test_occ_threads;
    Alcotest.test_case "recorded history dynamic atomic" `Quick
      test_recorded_history_dynamic_atomic;
    Alcotest.test_case "durable group commit under threads" `Slow
      test_durable_group_commit_threads;
    Alcotest.test_case "flusher death wakes parked committer" `Slow
      test_flusher_death_wakes_parked_committer;
    Alcotest.test_case "futile wakeups counted" `Slow test_futile_wakeup_counted;
    Alcotest.test_case "default backoff" `Quick test_default_backoff;
  ]
