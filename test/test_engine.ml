(* The executable engine: lock table, recovery managers, atomic objects,
   database, deadlock detection — including the run-time counterparts of
   the paper's §5 examples and end-to-end dynamic-atomicity checks of
   recorded histories. *)

open Tm_core
module Lock_table = Tm_engine.Lock_table
module Recovery = Tm_engine.Recovery
module Atomic_object = Tm_engine.Atomic_object
module Database = Tm_engine.Database
module Deadlock = Tm_engine.Deadlock

module BA = Tm_adt.Bank_account

let dep = BA.deposit
let wok = BA.withdraw_ok

let deposit_inv i = Op.invocation ~args:[ Value.int i ] "deposit"
let withdraw_inv i = Op.invocation ~args:[ Value.int i ] "withdraw"
let balance_inv = Op.invocation "balance"

(* --- Lock table --- *)

let test_lock_table () =
  let t = Lock_table.create BA.nrbc_conflict in
  Lock_table.add t Tid.a (dep 1);
  Alcotest.check Helpers.tids "withdraw blocked by deposit" [ Tid.a ]
    (Lock_table.blockers t ~requested:(wok 1) ~tid:Tid.b);
  Alcotest.check Helpers.tids "own op never blocks" []
    (Lock_table.blockers t ~requested:(wok 1) ~tid:Tid.a);
  Alcotest.check Helpers.tids "deposit free" []
    (Lock_table.blockers t ~requested:(dep 2) ~tid:Tid.b);
  Lock_table.release t Tid.a;
  Alcotest.check Helpers.tids "released" []
    (Lock_table.blockers t ~requested:(wok 1) ~tid:Tid.b)

(* The per-tid index must preserve the observable contract of the old
   association list: [holds] in global acquisition order, [release]
   dropping exactly one transaction's holds, [blockers] deduplicated. *)
let test_lock_table_holds_order () =
  let t = Lock_table.create BA.nrbc_conflict in
  Lock_table.add t Tid.a (dep 1);
  Lock_table.add t Tid.b (dep 2);
  Lock_table.add t Tid.a (dep 3);
  let pair = Alcotest.pair Helpers.tid Helpers.op in
  Alcotest.check (Alcotest.list pair) "acquisition order across tids"
    [ (Tid.a, dep 1); (Tid.b, dep 2); (Tid.a, dep 3) ]
    (Lock_table.holds t);
  Lock_table.release t Tid.a;
  Alcotest.check (Alcotest.list pair) "only a's holds dropped"
    [ (Tid.b, dep 2) ]
    (Lock_table.holds t);
  Lock_table.release t Tid.a;
  (* idempotent *)
  Alcotest.check (Alcotest.list pair) "release of absent tid is a no-op"
    [ (Tid.b, dep 2) ]
    (Lock_table.holds t)

let test_lock_table_blockers_dedup () =
  let t = Lock_table.create BA.nrbc_conflict in
  Lock_table.add t Tid.a (dep 1);
  Lock_table.add t Tid.a (dep 2);
  Lock_table.add t Tid.b (dep 3);
  Alcotest.check Helpers.tids "each holder reported once"
    [ Tid.a; Tid.b ]
    (List.sort Tid.compare (Lock_table.blockers t ~requested:(wok 1) ~tid:Tid.c));
  Alcotest.check Helpers.tids "own holds ignored" [ Tid.b ]
    (Lock_table.blockers t ~requested:(wok 1) ~tid:Tid.a)

(* --- Recovery managers --- *)

let test_uip_view_semantics () =
  (* §5: UIP shows B's active withdrawal to everyone. *)
  let r = Recovery.create Recovery.UIP BA.spec in
  Recovery.record r Tid.a (dep 5);
  Recovery.commit r Tid.a;
  Recovery.record r Tid.b (wok 3);
  Alcotest.check (Alcotest.list Helpers.value) "C sees balance 2" [ Value.int 2 ]
    (Recovery.responses r Tid.c balance_inv)

let test_du_view_semantics () =
  (* §5: DU hides B's active withdrawal from C but not from B. *)
  let r = Recovery.create Recovery.DU BA.spec in
  Recovery.record r Tid.a (dep 5);
  Recovery.commit r Tid.a;
  Recovery.record r Tid.b (wok 3);
  Alcotest.check (Alcotest.list Helpers.value) "B sees balance 2" [ Value.int 2 ]
    (Recovery.responses r Tid.b balance_inv);
  Alcotest.check (Alcotest.list Helpers.value) "C sees balance 5" [ Value.int 5 ]
    (Recovery.responses r Tid.c balance_inv)

let test_uip_abort_undoes () =
  let r = Recovery.create Recovery.UIP BA.spec in
  Recovery.record r Tid.a (dep 5);
  Recovery.record r Tid.b (dep 3);
  Recovery.abort r Tid.b;
  Alcotest.check (Alcotest.list Helpers.value) "balance back to 5" [ Value.int 5 ]
    (Recovery.responses r Tid.c balance_inv)

let test_du_abort_discards () =
  let r = Recovery.create Recovery.DU BA.spec in
  Recovery.record r Tid.a (dep 5);
  Recovery.abort r Tid.a;
  Alcotest.check (Alcotest.list Helpers.value) "balance 0" [ Value.int 0 ]
    (Recovery.responses r Tid.b balance_inv)

let test_du_commit_order_visibility () =
  let r = Recovery.create Recovery.DU BA.spec in
  Recovery.record r Tid.a (dep 5);
  Recovery.record r Tid.b (dep 2);
  (* neither committed: C sees 0 *)
  Alcotest.check (Alcotest.list Helpers.value) "C sees 0" [ Value.int 0 ]
    (Recovery.responses r Tid.c balance_inv);
  Recovery.commit r Tid.b;
  Alcotest.check (Alcotest.list Helpers.value) "C sees 2" [ Value.int 2 ]
    (Recovery.responses r Tid.c balance_inv);
  Recovery.commit r Tid.a;
  Alcotest.check Helpers.ops "commit order log" [ dep 2; dep 5 ] (Recovery.committed_ops r)

let test_record_illegal_raises () =
  let r = Recovery.create Recovery.UIP BA.spec in
  Alcotest.check_raises "illegal op"
    (Invalid_argument "Recovery.record(UIP): illegal operation BA:[withdraw(5),ok]")
    (fun () -> Recovery.record r Tid.a (wok 5))

(* --- Atomic objects --- *)

let make_ba recovery =
  Atomic_object.create ~spec:BA.spec
    ~conflict:(match recovery with Recovery.UIP -> BA.nrbc_conflict | Recovery.DU -> BA.nfc_conflict)
    ~recovery ()

let test_invoke_executes () =
  let o = make_ba Recovery.UIP in
  (match Atomic_object.invoke o Tid.a (deposit_inv 5) with
  | Atomic_object.Executed op -> Alcotest.check Helpers.op "deposit" (dep 5) op
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out);
  match Atomic_object.invoke o Tid.a balance_inv with
  | Atomic_object.Executed op -> Alcotest.check Helpers.op "balance 5" (BA.balance 5) op
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out

let test_invoke_blocks_and_unblocks () =
  let o = make_ba Recovery.UIP in
  ignore (Atomic_object.invoke o Tid.a (deposit_inv 5));
  (match Atomic_object.invoke o Tid.b (withdraw_inv 3) with
  | Atomic_object.Blocked [ t ] -> Alcotest.check Helpers.tid "blocked on A" Tid.a t
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out);
  Helpers.check_int "block counted" 1 (Atomic_object.block_count o);
  Atomic_object.commit o Tid.a;
  match Atomic_object.invoke o Tid.b (withdraw_inv 3) with
  | Atomic_object.Executed op -> Alcotest.check Helpers.op "withdraw ok" (wok 3) op
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out

let test_result_dependent_locking () =
  (* A failed withdrawal does not conflict with a held deposit's... it
     does under NRBC (deposit held, wno requested → wno RBC dep → no
     conflict).  Under NRBC a *successful* withdrawal is blocked while a
     failed one proceeds: the lock depends on the result. *)
  let o = make_ba Recovery.UIP in
  ignore (Atomic_object.invoke o Tid.a (deposit_inv 1));
  (* B's withdraw(5) would fail (balance 1): the wno result does not
     conflict with the held deposit, so it executes. *)
  (match Atomic_object.invoke o Tid.b (withdraw_inv 5) with
  | Atomic_object.Executed op -> Alcotest.check Helpers.op "wno executes" (BA.withdraw_no 5) op
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out);
  (* C's withdraw(1) would succeed — and a successful withdrawal does not
     push back over a deposit, so it blocks. *)
  match Atomic_object.invoke o Tid.c (withdraw_inv 1) with
  | Atomic_object.Blocked _ -> ()
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out

let test_no_response () =
  let module FQ = Tm_adt.Fifo_queue in
  let o = Atomic_object.create ~spec:FQ.spec ~conflict:FQ.nfc_conflict ~recovery:Recovery.DU () in
  match Atomic_object.invoke o Tid.a (Op.invocation "deq") with
  | Atomic_object.No_response -> ()
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out

let test_abort_releases_and_undoes () =
  let o = make_ba Recovery.UIP in
  ignore (Atomic_object.invoke o Tid.a (deposit_inv 5));
  Atomic_object.abort o Tid.a;
  Helpers.check_int "locks released" 0 (List.length (Atomic_object.holds o));
  match Atomic_object.invoke o Tid.b balance_inv with
  | Atomic_object.Executed op -> Alcotest.check Helpers.op "balance 0" (BA.balance 0) op
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out

let test_committed_ops_replay () =
  let o = make_ba Recovery.DU in
  ignore (Atomic_object.invoke o Tid.a (deposit_inv 5));
  Atomic_object.commit o Tid.a;
  ignore (Atomic_object.invoke o Tid.b (withdraw_inv 2));
  Atomic_object.commit o Tid.b;
  Alcotest.check Helpers.ops "commit-order ops" [ dep 5; wok 2 ] (Atomic_object.committed_ops o);
  Helpers.check_bool "replays legally" true
    (Spec.legal (Atomic_object.spec o) (Atomic_object.committed_ops o))

(* Inverse-operation undo: the compensation fast path must agree with the
   general replay path on every randomised schedule.  The schedules run
   through locked objects (NRBC): update-in-place undo is only meaningful
   under a conflict relation containing NRBC (Theorem 9) — driving the
   raw manager without locks can strand the shared log, which is exactly
   the interaction the paper is about. *)
let test_inverse_undo_equivalence () =
  for seed = 1 to 30 do
    let rng = Random.State.make [| seed |] in
    let fast =
      Atomic_object.create ~inverse:BA.inverse ~spec:BA.spec ~conflict:BA.nrbc_conflict
        ~recovery:Recovery.UIP ()
    in
    let slow =
      Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
        ~recovery:Recovery.UIP ()
    in
    let txns = [ Tid.a; Tid.b; Tid.c ] in
    let finished = Hashtbl.create 8 in
    for _ = 1 to 40 do
      let tid = List.nth txns (Random.State.int rng 3) in
      if not (Hashtbl.mem finished tid) then
        match Random.State.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 | 5 ->
            let inv =
              match Random.State.int rng 3 with
              | 0 -> deposit_inv (1 + Random.State.int rng 3)
              | 1 -> withdraw_inv (1 + Random.State.int rng 3)
              | _ -> balance_inv
            in
            (* identical states and deterministic choice: identical
               outcomes *)
            let o1 = Atomic_object.invoke fast tid inv in
            let o2 = Atomic_object.invoke slow tid inv in
            Helpers.check_bool "same outcome" true
              (match o1, o2 with
              | Atomic_object.Executed a, Atomic_object.Executed b -> Op.equal a b
              | Atomic_object.Blocked a, Atomic_object.Blocked b -> a = b
              | Atomic_object.No_response, Atomic_object.No_response -> true
              | _, _ -> false)
        | 6 | 7 ->
            Atomic_object.commit fast tid;
            Atomic_object.commit slow tid;
            Hashtbl.add finished tid ()
        | _ ->
            Atomic_object.abort fast tid;
            Atomic_object.abort slow tid;
            Hashtbl.add finished tid ()
    done;
    (* same committed work, same observable final state *)
    Alcotest.check Helpers.ops "same committed ops" (Atomic_object.committed_ops slow)
      (Atomic_object.committed_ops fast);
    let observer = Tid.of_int 9 in
    Helpers.check_bool "same final balance" true
      (Atomic_object.invoke fast observer balance_inv
      = Atomic_object.invoke slow observer balance_inv)
  done

let test_inverse_undo_counter () =
  let module C = Tm_adt.Bounded_counter in
  let r = Recovery.create ~inverse:C.inverse Recovery.UIP C.spec in
  Recovery.record r Tid.a (C.incr_ok 2);
  Recovery.record r Tid.b (C.incr_ok 1);
  Recovery.abort r Tid.a;
  Alcotest.(check (list Helpers.value))
    "abort compensated" [ Value.int 1 ]
    (Recovery.responses r Tid.c (Op.invocation "read"))

(* --- Deadlock --- *)

let test_deadlock_cycle () =
  let d = Deadlock.create () in
  Deadlock.set_waiting d Tid.a ~on:[ Tid.b ];
  Alcotest.(check (option Helpers.tids)) "no cycle yet" None (Deadlock.find_cycle d);
  Deadlock.set_waiting d Tid.b ~on:[ Tid.c ];
  Deadlock.set_waiting d Tid.c ~on:[ Tid.a ];
  (match Deadlock.find_cycle d with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
      Helpers.check_int "3-cycle" 3 (List.length cycle);
      Alcotest.check Helpers.tid "victim is youngest" Tid.c (Deadlock.victim cycle));
  Deadlock.clear d Tid.c;
  Alcotest.(check (option Helpers.tids)) "cleared" None (Deadlock.find_cycle d)

(* Regression: [clear] used to Hashtbl.replace inside Hashtbl.iter over
   the same table — unspecified behaviour.  Clearing a tid that appears
   in many edge lists must remove every mention and nothing else. *)
let test_deadlock_clear_many_edges () =
  let d = Deadlock.create () in
  let tids = List.init 40 Tid.of_int in
  let victim = Tid.of_int 40 in
  List.iter (fun t -> Deadlock.set_waiting d t ~on:[ victim; Tid.a ]) tids;
  Deadlock.set_waiting d victim ~on:[ Tid.b ];
  Deadlock.clear d victim;
  Alcotest.check Helpers.tids "victim's own edges gone" [] (Deadlock.waiting d victim);
  List.iter
    (fun t ->
      Alcotest.check Helpers.tids
        (Fmt.str "only %a's edge to the victim removed" Tid.pp t)
        [ Tid.a ] (Deadlock.waiting d t))
    tids

let test_deadlock_self_loop_impossible () =
  (* The lock table never reports a transaction as blocking itself, but
     the graph handles a self-edge gracefully if given one. *)
  let d = Deadlock.create () in
  Deadlock.set_waiting d Tid.a ~on:[ Tid.a ];
  match Deadlock.find_cycle d with
  | Some [ t ] -> Alcotest.check Helpers.tid "self" Tid.a t
  | _ -> Alcotest.fail "expected self-cycle"

(* --- Database --- *)

let test_database_end_to_end () =
  let db =
    Database.create ~record_history:true
      [ make_ba Recovery.UIP ]
  in
  let a = Database.begin_txn db in
  let b = Database.begin_txn db in
  ignore (Database.invoke db a ~obj:"BA" (deposit_inv 5));
  ignore (Database.invoke db b ~obj:"BA" (deposit_inv 3));
  Database.commit db a;
  Database.commit db b;
  Helpers.check_int "committed" 2 (Database.committed_count db);
  let h = Database.history db in
  Helpers.check_bool "recorded history well-formed" true (History.is_well_formed h);
  Helpers.check_bool "recorded history dynamic atomic" true
    (Atomicity.is_dynamic_atomic Helpers.ba_env h)

let test_database_deadlock_and_abort () =
  let db = Database.create [ make_ba Recovery.UIP ] in
  let a = Database.begin_txn db in
  let b = Database.begin_txn db in
  ignore (Database.invoke db a ~obj:"BA" (deposit_inv 1));
  ignore (Database.invoke db b ~obj:"BA" (deposit_inv 1));
  (* both now request withdrawals: each blocks on the other's deposit *)
  (match Database.invoke db a ~obj:"BA" (withdraw_inv 1) with
  | Atomic_object.Blocked _ -> ()
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out);
  (match Database.invoke db b ~obj:"BA" (withdraw_inv 1) with
  | Atomic_object.Blocked _ -> ()
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out);
  (match Database.deadlock db with
  | Some cycle -> Helpers.check_int "2-cycle" 2 (List.length cycle)
  | None -> Alcotest.fail "expected deadlock");
  Database.abort db b;
  Helpers.check_int "aborted" 1 (Database.aborted_count db);
  Alcotest.(check (option Helpers.tids)) "cycle broken" None (Database.deadlock db);
  match Database.invoke db a ~obj:"BA" (withdraw_inv 1) with
  | Atomic_object.Executed _ -> Database.commit db a
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out

let test_database_multi_object_commit () =
  let ba0 = Spec.rename BA.spec "BA0" and ba1 = Spec.rename BA.spec "BA1" in
  let mk spec =
    Atomic_object.create ~spec ~conflict:BA.nrbc_conflict ~recovery:Recovery.UIP ()
  in
  let db = Database.create ~record_history:true [ mk ba0; mk ba1 ] in
  let a = Database.begin_txn db in
  ignore (Database.invoke db a ~obj:"BA0" (deposit_inv 5));
  ignore (Database.invoke db a ~obj:"BA1" (deposit_inv 7));
  Database.commit db a;
  let h = Database.history db in
  (* commit events at both objects (atomic commitment) *)
  let commits = List.filter Event.is_commit (History.events h) in
  Helpers.check_int "two commit events" 2 (List.length commits);
  let env = Atomicity.env_of_list [ ba0; ba1 ] in
  Helpers.check_bool "atomic" true (Atomicity.is_dynamic_atomic env h)

let test_finished_txn_rejected () =
  let db = Database.create [ make_ba Recovery.UIP ] in
  let a = Database.begin_txn db in
  Database.commit db a;
  Alcotest.check_raises "invoke after commit"
    (Invalid_argument "Database: transaction A already finished") (fun () ->
      ignore (Database.invoke db a ~obj:"BA" (deposit_inv 1)))

(* Property: random single-object engine runs (UIP and DU) always record
   dynamic-atomic histories and pass the commit-order replay check. *)
let random_engine_run recovery seed =
  let conflict =
    match recovery with Recovery.UIP -> BA.nrbc_conflict | Recovery.DU -> BA.nfc_conflict
  in
  let o = Atomic_object.create ~spec:BA.spec ~conflict ~recovery () in
  let db = Database.create ~record_history:true [ o ] in
  let rng = Random.State.make [| seed |] in
  let active = ref [] in
  for _ = 1 to 40 do
    (* admit up to 4 transactions *)
    if List.length !active < 4 then active := Database.begin_txn db :: !active;
    match !active with
    | [] -> ()
    | ts ->
        let t = List.nth ts (Random.State.int rng (List.length ts)) in
        let choice = Random.State.int rng 10 in
        if choice < 6 then begin
          let inv =
            match Random.State.int rng 3 with
            | 0 -> deposit_inv (1 + Random.State.int rng 2)
            | 1 -> withdraw_inv (1 + Random.State.int rng 2)
            | _ -> balance_inv
          in
          ignore (Database.invoke db t ~obj:"BA" inv);
          match Database.deadlock db with
          | Some cycle ->
              let v = Tm_engine.Deadlock.victim cycle in
              Database.abort db v;
              active := List.filter (fun x -> not (Tid.equal x v)) !active
          | None -> ()
        end
        else if choice < 9 then begin
          Database.commit db t;
          active := List.filter (fun x -> not (Tid.equal x t)) !active
        end
        else begin
          Database.abort db t;
          active := List.filter (fun x -> not (Tid.equal x t)) !active
        end
  done;
  db

let prop_engine_histories_dynamic_atomic =
  Alcotest.test_case "random engine runs are dynamic atomic" `Slow (fun () ->
      List.iter
        (fun recovery ->
          for seed = 1 to 25 do
            let db = random_engine_run recovery seed in
            let h = Database.history db in
            Helpers.check_bool "well-formed" true (History.is_well_formed h);
            Helpers.check_bool "dynamic atomic" true
              (Atomicity.is_dynamic_atomic Helpers.ba_env h);
            Helpers.check_bool "commit-order replay" true
              (List.for_all
                 (fun o -> Spec.legal (Atomic_object.spec o) (Atomic_object.committed_ops o))
                 (Database.objects db))
          done)
        [ Recovery.UIP; Recovery.DU ])

let suite =
  [
    Alcotest.test_case "lock table" `Quick test_lock_table;
    Alcotest.test_case "lock table holds order" `Quick test_lock_table_holds_order;
    Alcotest.test_case "lock table blockers dedup" `Quick
      test_lock_table_blockers_dedup;
    Alcotest.test_case "UIP view semantics (§5)" `Quick test_uip_view_semantics;
    Alcotest.test_case "DU view semantics (§5)" `Quick test_du_view_semantics;
    Alcotest.test_case "UIP abort undoes" `Quick test_uip_abort_undoes;
    Alcotest.test_case "DU abort discards" `Quick test_du_abort_discards;
    Alcotest.test_case "DU commit-order visibility" `Quick test_du_commit_order_visibility;
    Alcotest.test_case "record illegal raises" `Quick test_record_illegal_raises;
    Alcotest.test_case "invoke executes" `Quick test_invoke_executes;
    Alcotest.test_case "invoke blocks and unblocks" `Quick test_invoke_blocks_and_unblocks;
    Alcotest.test_case "result-dependent locking" `Quick test_result_dependent_locking;
    Alcotest.test_case "partial op: no response" `Quick test_no_response;
    Alcotest.test_case "abort releases and undoes" `Quick test_abort_releases_and_undoes;
    Alcotest.test_case "committed ops replay" `Quick test_committed_ops_replay;
    Alcotest.test_case "inverse undo = replay undo" `Slow test_inverse_undo_equivalence;
    Alcotest.test_case "inverse undo (counter)" `Quick test_inverse_undo_counter;
    Alcotest.test_case "deadlock cycle" `Quick test_deadlock_cycle;
    Alcotest.test_case "deadlock clear with many edges" `Quick
      test_deadlock_clear_many_edges;
    Alcotest.test_case "deadlock self-loop" `Quick test_deadlock_self_loop_impossible;
    Alcotest.test_case "database end-to-end" `Quick test_database_end_to_end;
    Alcotest.test_case "database deadlock" `Quick test_database_deadlock_and_abort;
    Alcotest.test_case "multi-object commit" `Quick test_database_multi_object_commit;
    Alcotest.test_case "finished txn rejected" `Quick test_finished_txn_rejected;
    prop_engine_histories_dynamic_atomic;
  ]
