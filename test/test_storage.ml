(* On-disk WAL robustness: codec framing round trips, corruption
   detection (torn tail vs interior), storage backend semantics, fault
   injection, and the retrying disk log. *)

open Tm_core
module Wal = Tm_engine.Wal
module Codec = Tm_engine.Wal.Codec
module Storage = Tm_engine.Storage
module Disk_wal = Tm_engine.Disk_wal
module BA = Tm_adt.Bank_account

(* ------------------------------------------------------------------ *)
(* Generators: arbitrary WAL records, including fuzzy checkpoints with
   live-transaction logs.                                              *)

let tid_gen = QCheck2.Gen.(map Tid.of_int (int_bound 9))

let record_gen =
  let open QCheck2.Gen in
  let op = Helpers.ba_op_gen in
  oneof
    [
      map (fun t -> Wal.Begin t) tid_gen;
      map2 (fun t o -> Wal.Operation (t, o)) tid_gen op;
      map (fun t -> Wal.Commit t) tid_gen;
      map (fun t -> Wal.Abort t) tid_gen;
      map3
        (fun committed live next_tid -> Wal.Checkpoint { Wal.committed; live; next_tid })
        (list_size (int_bound 4) op)
        (list_size (int_bound 3) (pair tid_gen (list_size (int_bound 3) op)))
        (int_bound 20);
    ]

let records_gen = QCheck2.Gen.(list_size (int_bound 12) record_gen)

let is_record_prefix xs ys =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> Wal.equal_record x y && go (xs, ys)
  in
  go (xs, ys)

(* ------------------------------------------------------------------ *)
(* Codec properties.                                                   *)

let prop_roundtrip =
  Helpers.qcheck "decode (encode rs) = rs" records_gen (fun rs ->
      let bytes = Codec.encode_all rs in
      match Codec.decode_all bytes with
      | Error _ -> false
      | Ok d ->
          d.Codec.torn = None
          && d.Codec.clean_bytes = String.length bytes
          && List.equal Wal.equal_record rs d.Codec.records)

(* Same round trip at every supported format version: the payload
   encoding is shared, only the frame header differs. *)
let prop_versioned_roundtrip =
  Helpers.qcheck "decode (encode ~version rs) = rs for each version"
    QCheck2.Gen.(pair (oneofl Codec.supported_versions) records_gen)
    (fun (version, rs) ->
      let bytes = Codec.encode_all ~version rs in
      match Codec.decode_all bytes with
      | Error _ -> false
      | Ok d ->
          d.Codec.torn = None && List.equal Wal.equal_record rs d.Codec.records)

(* And with the version chosen per frame: any v1/v2 interleaving decodes
   to the same records — version negotiation is per frame, not per log. *)
let prop_mixed_version_roundtrip =
  Helpers.qcheck "per-frame version mix round trips"
    QCheck2.Gen.(pair records_gen (list_size (int_range 1 8) (oneofl Codec.supported_versions)))
    (fun (rs, versions) ->
      let n = List.length versions in
      let bytes =
        String.concat ""
          (List.mapi
             (fun i r -> Codec.encode ~version:(List.nth versions (i mod n)) r)
             rs)
      in
      match Codec.decode_all bytes with
      | Error _ -> false
      | Ok d -> List.equal Wal.equal_record rs d.Codec.records)

(* Cutting the encoding anywhere must decode to a record prefix with at
   most a torn tail — never an interior-corruption verdict, never extra
   or different records. *)
let prop_truncation =
  Helpers.qcheck "truncated encoding = torn tail"
    QCheck2.Gen.(pair records_gen (int_bound 10_000))
    (fun (rs, n) ->
      let bytes = Codec.encode_all rs in
      let cut = if String.length bytes = 0 then 0 else n mod String.length bytes in
      match Codec.decode_all (String.sub bytes 0 cut) with
      | Error _ -> false
      | Ok d -> is_record_prefix d.Codec.records rs)

(* A single flipped bit is either detected (interior corruption) or
   contained (torn tail whose records are a prefix) — never a silent
   change of the record list. *)
let prop_bit_flip =
  Helpers.qcheck "bit flip never silent"
    QCheck2.Gen.(triple records_gen (int_bound 100_000) (int_bound 7))
    (fun (rs, n, bit) ->
      let bytes = Codec.encode_all rs in
      if String.length bytes = 0 then true
      else begin
        let i = n mod String.length bytes in
        let b = Bytes.of_string bytes in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
        match Codec.decode_all (Bytes.to_string b) with
        | Error _ -> true
        | Ok d -> is_record_prefix d.Codec.records rs
      end)

let sample_records =
  [
    Wal.Begin Tid.a;
    Wal.Operation (Tid.a, BA.deposit 5);
    Wal.Commit Tid.a;
    Wal.Begin Tid.b;
    Wal.Operation (Tid.b, BA.withdraw_ok 2);
  ]

let test_codec_truncate_intent_roundtrip () =
  let r = Wal.Truncate_intent { old_len = 12345; new_len = 678 } in
  Helpers.check_bool "record kind" true
    (String.equal (Wal.record_kind r) "truncate_intent");
  let bytes = Codec.encode_all (sample_records @ [ r ]) in
  match Codec.decode_all bytes with
  | Error c -> Alcotest.failf "decode failed: %a" Codec.pp_corruption c
  | Ok d ->
      Helpers.check_bool "round trips" true
        (List.equal Wal.equal_record (sample_records @ [ r ]) d.Codec.records)

(* The resynchronisation probe behind torn-vs-interior verdicts: an
   intact frame after the damage means interior, no such frame means
   torn tail — and an adversarial log dense with false frame anchors
   must exhaust the probe budget into the conservative (interior,
   refuse) verdict rather than scanning quadratically. *)
let test_valid_frame_after () =
  let frame = Codec.encode (Wal.Begin Tid.a) in
  let garbage = String.make 40 Codec.magic0 in
  Helpers.check_bool "intact frame after damage" true
    (Codec.valid_frame_after (garbage ^ frame) 1);
  Helpers.check_bool "pure torn tail has no frame after" false
    (Codec.valid_frame_after garbage 1);
  (* An adversarial tail dense with plausible-but-bad frames: every copy
     anchors a full decode probe (header checks pass, CRC fails).  With
     budget, the scan pays for each probe and still answers torn; a
     one-probe budget must give up into the conservative interior
     verdict — never a cheap torn-drop. *)
  let bad_crc =
    let hdr = Codec.header_size Codec.write_version in
    let b = Bytes.of_string frame in
    Bytes.set b (hdr - 1) (Char.chr (Char.code (Bytes.get b (hdr - 1)) lxor 1));
    Bytes.to_string b
  in
  let adversarial = String.concat "" (List.init 5 (fun _ -> bad_crc)) in
  Helpers.check_bool "all probes fail = torn" false
    (Codec.valid_frame_after adversarial 0);
  Helpers.check_bool "budget exhaustion is conservative (interior)" true
    (Codec.valid_frame_after ~budget:1 adversarial 0)

(* Parallel frame decode is an internal optimisation: for any image the
   result must be identical to the serial decoder — including torn and
   damaged images, where it falls back to serial for the verdict. *)
let test_parallel_decode_equivalence () =
  let recs =
    List.concat
      (List.init 150 (fun i ->
           let t = Tid.of_int (i mod 10) in
           [ Wal.Begin t; Wal.Operation (t, BA.deposit 1); Wal.Commit t ]))
  in
  let bytes = Codec.encode_all recs in
  let serial = Codec.decode_all bytes in
  List.iter
    (fun w ->
      match (serial, Codec.decode_all ~workers:w bytes) with
      | Ok a, Ok b ->
          Helpers.check_bool
            (Fmt.str "clean image, %d workers" w)
            true
            (List.equal Wal.equal_record a.Codec.records b.Codec.records
            && a.Codec.clean_bytes = b.Codec.clean_bytes
            && a.Codec.torn = b.Codec.torn)
      | _ -> Alcotest.fail "clean image failed to decode")
    [ 1; 2; 4; 8 ];
  (* torn tail: parallel extents cannot cover the image; serial fallback
     must report the identical truncation *)
  let torn = String.sub bytes 0 (String.length bytes - 5) in
  (match (Codec.decode_all torn, Codec.decode_all ~workers:4 torn) with
  | Ok a, Ok b ->
      Helpers.check_bool "torn image identical via fallback" true
        (List.equal Wal.equal_record a.Codec.records b.Codec.records
        && a.Codec.clean_bytes = b.Codec.clean_bytes)
  | _ -> Alcotest.fail "torn image failed to decode");
  (* interior damage: same refusal, same offset *)
  let b = Bytes.of_string bytes in
  let hdr = Codec.header_size Codec.write_version in
  Bytes.set b hdr (Char.chr (Char.code (Bytes.get b hdr) lxor 0x10));
  let damaged = Bytes.to_string b in
  match (Codec.decode_all damaged, Codec.decode_all ~workers:4 damaged) with
  | Error a, Error b ->
      Helpers.check_int "same interior offset via fallback" a.Codec.offset
        b.Codec.offset
  | _ -> Alcotest.fail "interior damage not refused"

let test_codec_frame_shape () =
  Helpers.check_int "write format version" 2 Codec.write_version;
  Alcotest.(check (list int))
    "supported versions" [ 1; 2 ] Codec.supported_versions;
  let frame = Codec.encode (Wal.Begin Tid.a) in
  Helpers.check_bool "frame longer than header" true
    (String.length frame > Codec.header_size Codec.write_version);
  Helpers.check_bool "magic byte 0" true (frame.[0] = '\xd7');
  Helpers.check_bool "magic byte 1" true (frame.[1] = 'W');
  Helpers.check_int "version byte" Codec.write_version (Char.code frame.[2]);
  (* v2 carries a little-endian shard id (written as 0 for now) between
     the version byte and the payload length *)
  Helpers.check_int "shard id" 0
    (Char.code frame.[3] lor (Char.code frame.[4] lsl 8));
  let v1 = Codec.encode ~version:Codec.v1 (Wal.Begin Tid.a) in
  Helpers.check_int "v1 version byte" 1 (Char.code v1.[2]);
  Helpers.check_int "v2 header is 2 bytes wider" 2
    (String.length frame - String.length v1)

let test_codec_torn_tail () =
  let bytes = Codec.encode_all sample_records in
  (* Drop the last byte: the final frame is torn, the rest decodes. *)
  match Codec.decode_all (String.sub bytes 0 (String.length bytes - 1)) with
  | Error c -> Alcotest.failf "misclassified as interior: %a" Codec.pp_corruption c
  | Ok d ->
      Helpers.check_bool "torn tail reported" true (d.Codec.torn <> None);
      Helpers.check_int "one record lost" 4 (List.length d.Codec.records);
      Helpers.check_bool "survivors are a prefix" true
        (is_record_prefix d.Codec.records sample_records)

let test_codec_interior_corruption () =
  let bytes = Codec.encode_all sample_records in
  (* Flip a payload byte of the FIRST frame: later intact frames prove
     the damage is interior, so decode must refuse with the offset — and
     the verdict names the frame's format version. *)
  let b = Bytes.of_string bytes in
  let i = Codec.header_size Codec.write_version in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  match Codec.decode_all (Bytes.to_string b) with
  | Ok _ -> Alcotest.fail "interior corruption decoded silently"
  | Error c ->
      Helpers.check_int "corruption offset" 0 c.Codec.offset;
      Alcotest.(check (option int))
        "corruption carries frame version" (Some Codec.write_version) c.Codec.version

let contains_sub s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s
    && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  n = 0 || go 0

(* Satellite: interior-corruption verdicts must carry both the byte
   offset and the damaged frame's format version, for v1 and v2 frames
   alike — the negative-space counterpart of the golden files. *)
let test_corruption_offset_and_version () =
  List.iter
    (fun version ->
      (* good v-frame, then a corrupted v-frame, then a good one: the
         middle frame's CRC fails, the trailing intact frame forces the
         interior verdict. *)
      let f r = Codec.encode ~version r in
      let first = f (Wal.Begin Tid.a) in
      let victim = f (Wal.Operation (Tid.a, BA.deposit 5)) in
      let b = Bytes.of_string victim in
      let i = Codec.header_size version in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x08));
      let bytes = first ^ Bytes.to_string b ^ f (Wal.Commit Tid.a) in
      match Codec.decode_all bytes with
      | Ok _ -> Alcotest.failf "v%d interior corruption decoded silently" version
      | Error c ->
          Helpers.check_int
            (Fmt.str "v%d corruption offset" version)
            (String.length first) c.Codec.offset;
          Alcotest.(check (option int))
            (Fmt.str "v%d corruption version" version)
            (Some version) c.Codec.version;
          (* the rendered verdict names the version too *)
          Helpers.check_bool
            (Fmt.str "v%d verdict mentions the version" version)
            true
            (contains_sub
               (Fmt.str "%a" Codec.pp_corruption c)
               (Fmt.str "(v%d frame)" version)))
    Codec.supported_versions

(* A frame whose version byte names a future format is a foreign-version
   frame: with intact frames after it, refused with its offset and the
   unsupported version number; at the very tail, contained as a torn
   tail (indistinguishable from crash debris) — never misread as the
   current layout. *)
let test_foreign_version_refused () =
  let foreign =
    let b = Bytes.of_string (Codec.encode (Wal.Begin Tid.a)) in
    Bytes.set b 2 '\x09';
    Bytes.to_string b
  in
  let first = Codec.encode (Wal.Commit Tid.b) in
  (match Codec.decode_all (first ^ foreign ^ Codec.encode (Wal.Abort Tid.b)) with
  | Ok _ -> Alcotest.fail "interior foreign-version frame decoded silently"
  | Error c ->
      Helpers.check_int "foreign frame offset" (String.length first)
        c.Codec.offset;
      Alcotest.(check (option int)) "foreign version reported" (Some 9)
        c.Codec.version);
  match Codec.decode_all (first ^ foreign) with
  | Error c ->
      Alcotest.failf "foreign tail should be contained as torn: %a"
        Codec.pp_corruption c
  | Ok d ->
      Helpers.check_int "intact prefix kept" 1 (List.length d.Codec.records);
      (match d.Codec.torn with
      | Some c ->
          Alcotest.(check (option int)) "torn verdict names the version"
            (Some 9) c.Codec.version
      | None -> Alcotest.fail "foreign tail not reported as torn")

(* Version-negotiation round trips: pure v1, pure v2, and interleaved
   frames all decode to the same records — payload encoding is shared,
   only the frame header differs. *)
let test_mixed_version_roundtrip () =
  let v1 = Codec.encode_all ~version:Codec.v1 sample_records in
  let v2 = Codec.encode_all ~version:Codec.v2 sample_records in
  Helpers.check_bool "v1 and v2 images differ" true (not (String.equal v1 v2));
  List.iter
    (fun (label, bytes) ->
      match Codec.decode_all bytes with
      | Error c -> Alcotest.failf "%s refused: %a" label Codec.pp_corruption c
      | Ok d ->
          Helpers.check_bool (label ^ " round trips") true
            (List.equal Wal.equal_record sample_records d.Codec.records
            && d.Codec.torn = None))
    [ ("pure v1", v1); ("pure v2", v2) ];
  let mixed =
    String.concat ""
      (List.mapi
         (fun i r ->
           Codec.encode ~version:(if i mod 2 = 0 then Codec.v1 else Codec.v2) r)
         sample_records)
  in
  match Codec.decode_all mixed with
  | Error c -> Alcotest.failf "mixed-version log refused: %a" Codec.pp_corruption c
  | Ok d ->
      Helpers.check_bool "mixed-version log round trips" true
        (List.equal Wal.equal_record sample_records d.Codec.records)

(* A v1 log loaded by the current binary: replays bit-for-bit, appends
   land in v2 (a mixed log), and checkpoint_truncate rewrites pure v2 —
   the incremental upgrade path. *)
let test_disk_wal_v1_upgrade () =
  let v1_bytes = Codec.encode_all ~version:Codec.v1 sample_records in
  let storage = Storage.of_string v1_bytes in
  match Disk_wal.load storage with
  | Error c -> Alcotest.failf "v1 log refused: %a" Codec.pp_corruption c
  | Ok dw ->
      let wal = Disk_wal.wal dw in
      Helpers.check_bool "v1 records replay bit-for-bit" true
        (List.equal Wal.equal_record sample_records (Wal.records wal));
      Wal.append wal (Wal.Commit Tid.b);
      Wal.append wal (Wal.Checkpoint (Wal.fuzzy_checkpoint (Wal.records wal)));
      Wal.force wal;
      (* the log is now mixed: the v1 prefix untouched, v2 appended *)
      let mixed = Storage.read_all storage in
      Helpers.check_bool "v1 prefix untouched" true
        (String.length mixed > String.length v1_bytes
        && String.equal v1_bytes (String.sub mixed 0 (String.length v1_bytes)));
      Helpers.check_int "appends use the write version" Codec.write_version
        (Char.code mixed.[String.length v1_bytes + 2]);
      (match Disk_wal.load storage with
      | Error c -> Alcotest.failf "mixed log refused: %a" Codec.pp_corruption c
      | Ok dw2 ->
          Helpers.check_bool "mixed log reloads" true
            (List.equal Wal.equal_record (Wal.records wal)
               (Wal.records (Disk_wal.wal dw2))));
      ignore (Disk_wal.checkpoint_truncate dw);
      let compacted = Storage.read_all storage in
      (* every surviving frame was rewritten in the write version *)
      let rec check pos =
        if pos < String.length compacted then
          match Codec.read_header compacted pos with
          | Error c ->
              Alcotest.failf "compacted log unreadable at %d: %a" pos
                Codec.pp_corruption c
          | Ok h ->
              Helpers.check_int
                (Fmt.str "frame at %d is write-version" pos)
                Codec.write_version h.Codec.h_version;
              check (pos + h.Codec.h_size + h.Codec.h_payload_len)
      in
      check 0

(* ------------------------------------------------------------------ *)
(* Storage backends.                                                   *)

let test_memory_semantics () =
  let s = Storage.memory () in
  Helpers.check_int "empty" 0 (Storage.size s);
  Storage.write_at s ~pos:0 "hello";
  Helpers.check_int "size" 5 (Storage.size s);
  (* WAL semantics: a write at pos discards everything beyond it. *)
  Storage.write_at s ~pos:2 "xy";
  Alcotest.(check string) "overwrite truncates" "hexy" (Storage.read_all s);
  Alcotest.check_raises "past-end write rejected"
    (Invalid_argument "Storage.write_at(memory): pos 9 outside [0,4]") (fun () ->
      Storage.write_at s ~pos:9 "z");
  let seeded = Storage.of_string "abc" in
  Helpers.check_int "seeded size" 3 (Storage.size seeded)

let test_file_backend () =
  let path = Filename.temp_file "tm_storage" ".wal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let s = Storage.file path in
      Storage.write_at s ~pos:0 "hello world";
      Storage.write_at s ~pos:6 "wal";
      Storage.force s;
      Alcotest.(check string) "pwrite + ftruncate" "hello wal" (Storage.read_all s);
      Storage.close s;
      (* Reopen: the bytes survived the handle. *)
      let s2 = Storage.file path in
      Alcotest.(check string) "persistent" "hello wal" (Storage.read_all s2);
      Helpers.check_int "size" 9 (Storage.size s2);
      Storage.close s2)

let test_faulty_torn_write () =
  let inner = Storage.memory () in
  let cfg = { Storage.no_faults with torn_write = 1. } in
  let s = Storage.faulty ~seed:42 cfg inner in
  let reg = Tm_obs.Metrics.create () in
  Storage.attach_metrics s reg;
  (match Storage.write_at s ~pos:0 "0123456789" with
  | () -> Alcotest.fail "torn write did not raise"
  | exception Storage.Transient _ -> ());
  let persisted = Storage.read_all inner in
  Helpers.check_bool "strict prefix persisted" true
    (String.length persisted > 0
    && String.length persisted < 10
    && String.equal persisted (String.sub "0123456789" 0 (String.length persisted)));
  Helpers.check_int "fault counted" 1 (Storage.fault_count s);
  Helpers.check_int "fault metric" 1
    (Tm_obs.Metrics.counter_value reg "tm_storage_faults_total"
       ~labels:[ ("backend", "memory"); ("kind", "torn_write") ]);
  (* Retrying at the same position overwrites the torn prefix. *)
  let clean = Storage.faulty ~seed:42 Storage.no_faults inner in
  Storage.write_at clean ~pos:0 "0123456789";
  Alcotest.(check string) "retry overwrites debris" "0123456789"
    (Storage.read_all inner)

(* ------------------------------------------------------------------ *)
(* Disk_wal: persistence, reload, retry.                               *)

let append_sample wal = List.iter (Wal.append wal) sample_records

let test_disk_wal_roundtrip () =
  let storage = Storage.memory () in
  let dw = Disk_wal.create storage in
  append_sample (Disk_wal.wal dw);
  Wal.force (Disk_wal.wal dw);
  Helpers.check_bool "bytes persisted" true (Storage.size storage > 0);
  Helpers.check_int "bytes_written = backend size" (Storage.size storage)
    (Disk_wal.bytes_written dw);
  match Disk_wal.load storage with
  | Error c -> Alcotest.failf "load failed: %a" Codec.pp_corruption c
  | Ok dw2 ->
      Helpers.check_bool "records survive reload" true
        (List.equal Wal.equal_record sample_records (Wal.records (Disk_wal.wal dw2)))

let test_disk_wal_create_discards_stale () =
  let storage = Storage.of_string "stale garbage from a previous log" in
  let dw = Disk_wal.create storage in
  Helpers.check_int "backend emptied" 0 (Storage.size storage);
  Wal.append (Disk_wal.wal dw) (Wal.Begin Tid.a);
  match Disk_wal.load storage with
  | Error c -> Alcotest.failf "load failed: %a" Codec.pp_corruption c
  | Ok dw2 -> Helpers.check_int "only new record" 1 (Wal.length (Disk_wal.wal dw2))

let test_disk_wal_torn_tail_truncated () =
  let storage = Storage.memory () in
  let dw = Disk_wal.create storage in
  append_sample (Disk_wal.wal dw);
  (* Crash mid-append: the backend holds a torn final frame. *)
  let bytes = Storage.read_all storage in
  let torn = Storage.of_string (String.sub bytes 0 (String.length bytes - 3)) in
  (match Disk_wal.load torn with
  | Error c -> Alcotest.failf "torn tail misclassified: %a" Codec.pp_corruption c
  | Ok dw2 ->
      Helpers.check_int "torn record dropped" 4 (Wal.length (Disk_wal.wal dw2));
      (* The next append lands where the intact prefix ends, overwriting
         the debris; a reload then sees the fresh record. *)
      Wal.append (Disk_wal.wal dw2) (Wal.Commit Tid.b);
      match Disk_wal.load torn with
      | Error c -> Alcotest.failf "post-repair load failed: %a" Codec.pp_corruption c
      | Ok dw3 ->
          Helpers.check_bool "repair overwrote debris" true
            (List.equal Wal.equal_record
               (List.filteri (fun i _ -> i < 4) sample_records @ [ Wal.Commit Tid.b ])
               (Wal.records (Disk_wal.wal dw3))))

let test_disk_wal_interior_corruption_refused () =
  let storage = Storage.memory () in
  let dw = Disk_wal.create storage in
  append_sample (Disk_wal.wal dw);
  let bytes = Storage.read_all storage in
  let b = Bytes.of_string bytes in
  let hdr = Codec.header_size Codec.write_version in
  Bytes.set b hdr (Char.chr (Char.code (Bytes.get b hdr) lxor 1));
  match Disk_wal.load (Storage.of_string (Bytes.to_string b)) with
  | Ok _ -> Alcotest.fail "interior corruption loaded silently"
  | Error c -> Helpers.check_int "offset of corrupt frame" 0 c.Codec.offset

let test_disk_wal_checkpoint_truncate () =
  let storage = Storage.memory () in
  let dw = Disk_wal.create storage in
  let wal = Disk_wal.wal dw in
  List.iter (Wal.append wal)
    [ Wal.Begin Tid.a; Wal.Operation (Tid.a, BA.deposit 1); Wal.Commit Tid.a ];
  Wal.append wal (Wal.Checkpoint (Wal.fuzzy_checkpoint (Wal.records wal)));
  Wal.append wal (Wal.Commit Tid.b);
  let before = Storage.size storage in
  let dropped = Disk_wal.checkpoint_truncate dw in
  Helpers.check_int "records dropped" 3 dropped;
  Helpers.check_bool "backend compacted" true (Storage.size storage < before);
  match Disk_wal.load storage with
  | Error c -> Alcotest.failf "load after truncate: %a" Codec.pp_corruption c
  | Ok dw2 ->
      let c1, l1 = Wal.replay (Wal.records wal) in
      let c2, l2 = Wal.replay (Wal.records (Disk_wal.wal dw2)) in
      Alcotest.check Helpers.ops "replay preserved" c1 c2;
      Helpers.check_bool "losers preserved" true (Tid.Set.equal l1 l2)

(* --- crash-atomic compaction: the journal + redo protocol --- *)

(* A disk log with a checkpoint, plus the three byte images the
   compaction protocol moves between: the old log, the journal
   (intent + compacted image) appended after it, and the image alone. *)
let compaction_fixture () =
  let storage = Storage.memory () in
  let dw = Disk_wal.create storage in
  let wal = Disk_wal.wal dw in
  List.iter (Wal.append wal)
    [ Wal.Begin Tid.a; Wal.Operation (Tid.a, BA.deposit 1); Wal.Commit Tid.a ];
  Wal.append wal (Wal.Checkpoint (Wal.fuzzy_checkpoint (Wal.records wal)));
  Wal.append wal (Wal.Commit Tid.b);
  let old_bytes = Storage.read_all storage in
  let mirror = Wal.of_records (Wal.records wal) in
  ignore (Wal.truncate_to_checkpoint mirror);
  let image = Codec.encode_all (Wal.records mirror) in
  let intent =
    Codec.encode
      (Wal.Truncate_intent
         { old_len = String.length old_bytes; new_len = String.length image })
  in
  (Wal.records wal, Wal.records mirror, old_bytes, intent, image)

(* Crash after the journal write was cut short: the compaction never
   committed, so reload rolls it back to exactly the old log — and the
   debris is overwritten by the next append. *)
let test_truncate_journal_rollback () =
  let old_records, _, old_bytes, intent, image = compaction_fixture () in
  List.iter
    (fun cut ->
      let state = old_bytes ^ String.sub (intent ^ image) 0 cut in
      match Disk_wal.load (Storage.of_string state) with
      | Error c ->
          Alcotest.failf "cut %d refused: %a" cut Codec.pp_corruption c
      | Ok dw ->
          Helpers.check_bool
            (Fmt.str "cut %d rolls back to the old log" cut)
            true
            (List.equal Wal.equal_record old_records
               (Wal.records (Disk_wal.wal dw))))
    [ 1; String.length intent; String.length intent + 3 ]

(* Crash inside the install: the complete journal is found and the
   install is redone — reload sees exactly the compacted log, and the
   backend afterwards holds exactly the image (journal erased). *)
let test_truncate_journal_redo () =
  let _, new_records, old_bytes, intent, image = compaction_fixture () in
  let full = old_bytes ^ intent ^ image in
  List.iter
    (fun k ->
      let state =
        String.sub image 0 k
        ^ String.sub full k (String.length full - k)
      in
      let storage = Storage.of_string state in
      match Disk_wal.load storage with
      | Error c -> Alcotest.failf "install byte %d refused: %a" k Codec.pp_corruption c
      | Ok dw ->
          Helpers.check_bool
            (Fmt.str "install byte %d redoes to the compacted log" k)
            true
            (List.equal Wal.equal_record new_records
               (Wal.records (Disk_wal.wal dw)));
          Alcotest.(check string)
            (Fmt.str "install byte %d leaves exactly the image" k)
            image (Storage.read_all storage))
    [ 0; 1; String.length image / 2 ]

(* A committed journal whose image no longer verifies must be refused as
   corruption — redoing the install from damaged bytes would destroy
   the old log with nothing sound to replace it. *)
let test_truncate_journal_damaged_image_refused () =
  let _, _, old_bytes, intent, image = compaction_fixture () in
  let b = Bytes.of_string (old_bytes ^ intent ^ image) in
  (* flip a bit inside the journaled image's first payload *)
  let off =
    String.length old_bytes + String.length intent
    + Codec.header_size Codec.write_version
  in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x20));
  match Disk_wal.load (Storage.of_string (Bytes.to_string b)) with
  | Ok _ -> Alcotest.fail "damaged journal image loaded silently"
  | Error c ->
      Helpers.check_bool "refusal points into the journal image" true
        (c.Codec.offset >= String.length old_bytes + String.length intent)

(* Regression: a fresh log must force the truncation of a stale
   previous-incarnation log before returning — otherwise a crash before
   the first commit flush resurrects the stale log.  Observed through
   the probe wrapper: the force lands after the truncating write. *)
let test_create_forces_stale_truncation () =
  let events = ref [] in
  let probed =
    Storage.probe
      ~on_write:(fun ~pos len -> events := `Write (pos, len) :: !events)
      ~on_force:(fun () -> events := `Force :: !events)
      (Storage.of_string "stale garbage from a previous log")
  in
  ignore (Disk_wal.create probed);
  (match List.rev !events with
  | `Write (0, 0) :: `Force :: _ -> ()
  | _ -> Alcotest.fail "create must truncate at 0 then force");
  (* and on a real file: same ordering through the Unix backend *)
  let path = Filename.temp_file "tm_create_force" ".wal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let f = Storage.file path in
      Storage.write_at f ~pos:0 "stale";
      Storage.force f;
      let fevents = ref [] in
      let fprobed =
        Storage.probe
          ~on_write:(fun ~pos len -> fevents := `Write (pos, len) :: !fevents)
          ~on_force:(fun () -> fevents := `Force :: !fevents)
          f
      in
      ignore (Disk_wal.create fprobed);
      Helpers.check_int "file emptied" 0 (Storage.size f);
      (match List.rev !fevents with
      | `Write (0, 0) :: `Force :: _ -> ()
      | _ -> Alcotest.fail "create must truncate the file at 0 then force");
      Storage.close f)

(* Seeded write-side faults: the retry loop absorbs every torn write and
   transient error, the persisted log equals the fault-free run, and the
   absorbed faults are visible in [retries] and the metrics registry. *)
let test_disk_wal_retry_absorbs_faults () =
  let inner = Storage.memory () in
  let faulty = Storage.faulty ~seed:7 Storage.write_faults inner in
  let dw = Disk_wal.create faulty in
  let reg = Tm_obs.Metrics.create () in
  Wal.attach_metrics (Disk_wal.wal dw) reg;
  for i = 0 to 19 do
    let t = Tid.of_int i in
    Wal.append (Disk_wal.wal dw) (Wal.Begin t);
    Wal.append (Disk_wal.wal dw) (Wal.Operation (t, BA.deposit 1));
    Wal.append (Disk_wal.wal dw) (Wal.Commit t);
    Wal.force (Disk_wal.wal dw)
  done;
  Helpers.check_bool "faults were injected" true (Storage.fault_count faulty > 0);
  Helpers.check_bool "retries absorbed them" true (Disk_wal.retries dw > 0);
  Helpers.check_int "retry metric matches" (Disk_wal.retries dw)
    (Tm_obs.Metrics.counter_value reg "tm_storage_retries_total");
  Helpers.check_bool "fault metric populated" true
    (Tm_obs.Metrics.counter_value reg "tm_storage_faults_total"
       ~labels:[ ("backend", "memory"); ("kind", "torn_write") ]
     > 0
    || Tm_obs.Metrics.counter_value reg "tm_storage_faults_total"
         ~labels:[ ("backend", "memory"); ("kind", "write_error") ]
       > 0);
  (* The underlying bytes decode to exactly the appended records. *)
  match Disk_wal.load inner with
  | Error c -> Alcotest.failf "faulty run corrupted the log: %a" Codec.pp_corruption c
  | Ok dw2 ->
      Helpers.check_bool "identical to fault-free log" true
        (List.equal Wal.equal_record
           (Wal.records (Disk_wal.wal dw))
           (Wal.records (Disk_wal.wal dw2)))

let test_disk_wal_gives_up () =
  let cfg = { Storage.no_faults with write_error = 1. } in
  let storage = Storage.faulty ~seed:1 cfg (Storage.memory ()) in
  let backoffs = ref [] in
  let retry =
    { Disk_wal.max_attempts = 3; backoff = (fun n -> backoffs := n :: !backoffs) }
  in
  let dw = Disk_wal.create ~retry storage in
  (match Wal.append (Disk_wal.wal dw) (Wal.Begin Tid.a) with
  | () -> Alcotest.fail "append succeeded under write_error = 1"
  | exception Disk_wal.Storage_unavailable { attempts; _ } ->
      Helpers.check_int "attempt budget spent" 3 attempts);
  Alcotest.(check (list int)) "backoff hook saw each failed attempt" [ 2; 1 ]
    !backoffs

let suite =
  [
    prop_roundtrip;
    prop_versioned_roundtrip;
    prop_mixed_version_roundtrip;
    prop_truncation;
    prop_bit_flip;
    Alcotest.test_case "codec frame shape" `Quick test_codec_frame_shape;
    Alcotest.test_case "codec torn tail" `Quick test_codec_torn_tail;
    Alcotest.test_case "codec interior corruption" `Quick
      test_codec_interior_corruption;
    Alcotest.test_case "corruption carries offset + frame version (v1, v2)"
      `Quick test_corruption_offset_and_version;
    Alcotest.test_case "foreign-version frame refused with offset" `Quick
      test_foreign_version_refused;
    Alcotest.test_case "v1/v2/mixed-version round trips" `Quick
      test_mixed_version_roundtrip;
    Alcotest.test_case "v1 log upgrade: load, mixed appends, v2 rewrite" `Quick
      test_disk_wal_v1_upgrade;
    Alcotest.test_case "codec truncate-intent round trip" `Quick
      test_codec_truncate_intent_roundtrip;
    Alcotest.test_case "valid_frame_after: verdicts and probe budget" `Quick
      test_valid_frame_after;
    Alcotest.test_case "parallel decode = serial decode" `Quick
      test_parallel_decode_equivalence;
    Alcotest.test_case "memory semantics" `Quick test_memory_semantics;
    Alcotest.test_case "file backend" `Quick test_file_backend;
    Alcotest.test_case "faulty torn write" `Quick test_faulty_torn_write;
    Alcotest.test_case "disk wal roundtrip" `Quick test_disk_wal_roundtrip;
    Alcotest.test_case "create discards stale log" `Quick
      test_disk_wal_create_discards_stale;
    Alcotest.test_case "torn tail truncated on load" `Quick
      test_disk_wal_torn_tail_truncated;
    Alcotest.test_case "interior corruption refused" `Quick
      test_disk_wal_interior_corruption_refused;
    Alcotest.test_case "checkpoint truncate compacts backend" `Quick
      test_disk_wal_checkpoint_truncate;
    Alcotest.test_case "truncation journal: rollback" `Quick
      test_truncate_journal_rollback;
    Alcotest.test_case "truncation journal: redo" `Quick
      test_truncate_journal_redo;
    Alcotest.test_case "truncation journal: damaged image refused" `Quick
      test_truncate_journal_damaged_image_refused;
    Alcotest.test_case "create forces stale-log truncation" `Quick
      test_create_forces_stale_truncation;
    Alcotest.test_case "retry absorbs injected faults" `Quick
      test_disk_wal_retry_absorbs_faults;
    Alcotest.test_case "storage unavailable after budget" `Quick
      test_disk_wal_gives_up;
  ]
