(* Crash recovery: the write-ahead log and durable objects.  The key
   property is crash-consistency at every instant — recovering from every
   prefix of a generated log yields exactly the transactions whose commit
   records made it to stable storage, replayed legally in commit order. *)

open Tm_core
module Wal = Tm_engine.Wal
module Durable = Tm_engine.Durable_object
module Atomic_object = Tm_engine.Atomic_object
module Recovery = Tm_engine.Recovery
module BA = Tm_adt.Bank_account

let deposit_inv i = Op.invocation ~args:[ Value.int i ] "deposit"
let withdraw_inv i = Op.invocation ~args:[ Value.int i ] "withdraw"
let balance_inv = Op.invocation "balance"

let make ?(recovery = Recovery.UIP) wal =
  Durable.create ~spec:BA.spec ~conflict:BA.nrbc_conflict ~recovery ~wal

(* Recovery now returns a result; tests on well-formed logs expect Ok. *)
let recover_exn = function
  | Ok x -> x
  | Error e -> Alcotest.failf "recovery failed: %a" Recovery.pp_error e

let test_replay_basic () =
  let recs =
    [
      Wal.Begin Tid.a;
      Wal.Operation (Tid.a, BA.deposit 5);
      Wal.Commit Tid.a;
      Wal.Begin Tid.b;
      Wal.Operation (Tid.b, BA.withdraw_ok 2);
    ]
  in
  let committed, losers = Wal.replay recs in
  Alcotest.check Helpers.ops "committed" [ BA.deposit 5 ] committed;
  Helpers.check_bool "B is a loser" true (Tid.Set.mem Tid.b losers);
  Helpers.check_bool "A is not" false (Tid.Set.mem Tid.a losers)

let test_replay_commit_order () =
  let recs =
    [
      Wal.Operation (Tid.b, BA.deposit 1);
      Wal.Operation (Tid.a, BA.deposit 2);
      Wal.Commit Tid.a;
      Wal.Commit Tid.b;
    ]
  in
  let committed, _ = Wal.replay recs in
  Alcotest.check Helpers.ops "commit order" [ BA.deposit 2; BA.deposit 1 ] committed

let test_replay_abort () =
  let recs =
    [ Wal.Operation (Tid.a, BA.deposit 1); Wal.Abort Tid.a ]
  in
  let committed, losers = Wal.replay recs in
  Alcotest.check Helpers.ops "nothing" [] committed;
  Helpers.check_bool "aborted is not a loser" true (Tid.Set.is_empty losers)

let cp ?(live = []) ?(next_tid = 0) committed =
  { Wal.committed; live; next_tid }

let test_replay_checkpoint () =
  let recs =
    [
      Wal.Operation (Tid.a, BA.deposit 1);
      Wal.Commit Tid.a;
      Wal.Checkpoint (cp [ BA.deposit 1 ]);
      Wal.Operation (Tid.b, BA.deposit 2);
      Wal.Commit Tid.b;
    ]
  in
  let committed, _ = Wal.replay recs in
  Alcotest.check Helpers.ops "checkpoint + tail" [ BA.deposit 1; BA.deposit 2 ] committed

(* Regression: a transaction in flight at checkpoint time, all of whose
   records precede the checkpoint, must still be reported as a loser —
   the old committed-ops-only checkpoint silently dropped it. *)
let test_checkpoint_keeps_pre_checkpoint_loser () =
  let head =
    [
      Wal.Begin Tid.a;
      Wal.Operation (Tid.a, BA.deposit 3);
      Wal.Begin Tid.b;  (* bare Begin: no operations yet *)
    ]
  in
  let snapshot = Wal.fuzzy_checkpoint head in
  let recs = head @ [ Wal.Checkpoint snapshot ] in
  let committed, losers = Wal.replay recs in
  Alcotest.check Helpers.ops "nothing committed" [] committed;
  Helpers.check_bool "pre-checkpoint in-flight txn is a loser" true
    (Tid.Set.mem Tid.a losers);
  Helpers.check_bool "bare-Begin txn is a loser" true (Tid.Set.mem Tid.b losers)

(* A transaction live at the checkpoint that commits afterwards replays
   its snapshot operations followed by the post-checkpoint ones. *)
let test_checkpoint_live_txn_commits_later () =
  let head = [ Wal.Begin Tid.a; Wal.Operation (Tid.a, BA.deposit 3) ] in
  let recs =
    head
    @ [
        Wal.Checkpoint (Wal.fuzzy_checkpoint head);
        Wal.Operation (Tid.a, BA.deposit 4);
        Wal.Commit Tid.a;
      ]
  in
  let committed, losers = Wal.replay recs in
  Alcotest.check Helpers.ops "snapshot ops + tail ops" [ BA.deposit 3; BA.deposit 4 ]
    committed;
  Helpers.check_bool "no losers" true (Tid.Set.is_empty losers)

(* The fuzzy snapshot is faithful: replaying just the checkpoint record
   gives the same outcome as replaying the records it summarises. *)
let test_fuzzy_checkpoint_roundtrip () =
  let recs =
    [
      Wal.Begin Tid.a;
      Wal.Operation (Tid.a, BA.deposit 1);
      Wal.Commit Tid.a;
      Wal.Begin Tid.b;
      Wal.Operation (Tid.b, BA.withdraw_ok 1);
      Wal.Begin Tid.c;
      Wal.Abort Tid.c;
    ]
  in
  let snapshot = Wal.fuzzy_checkpoint recs in
  let c1, l1 = Wal.replay recs in
  let c2, l2 = Wal.replay [ Wal.Checkpoint snapshot ] in
  Alcotest.check Helpers.ops "same committed" c1 c2;
  Helpers.check_bool "same losers" true (Tid.Set.equal l1 l2)

let test_truncate_to_checkpoint () =
  let wal = Wal.create () in
  let reg = Tm_obs.Metrics.create () in
  Wal.attach_metrics wal reg;
  List.iter (Wal.append wal)
    [
      Wal.Begin Tid.a;
      Wal.Operation (Tid.a, BA.deposit 1);
      Wal.Commit Tid.a;
      Wal.Begin Tid.b;
      Wal.Operation (Tid.b, BA.deposit 2);
    ];
  Wal.append wal (Wal.Checkpoint (Wal.fuzzy_checkpoint (Wal.records wal)));
  Wal.append wal (Wal.Operation (Tid.b, BA.deposit 4));
  Wal.append wal (Wal.Commit Tid.b);
  let before = Wal.replay (Wal.records wal) in
  let dropped = Wal.truncate_to_checkpoint wal in
  Helpers.check_int "records dropped" 5 dropped;
  Helpers.check_int "retained length" 3 (Wal.length wal);
  Helpers.check_int "truncated counter" 5 (Wal.truncated wal);
  Helpers.check_int "truncated metric" 5
    (Tm_obs.Metrics.counter_value reg "tm_wal_truncated_records_total");
  let after = Wal.replay (Wal.records wal) in
  Alcotest.check Helpers.ops "replay unchanged" (fst before) (fst after);
  Helpers.check_bool "losers unchanged" true (Tid.Set.equal (snd before) (snd after));
  Helpers.check_int "nothing more to drop" 0 (Wal.truncate_to_checkpoint wal)

let test_max_tid () =
  Helpers.check_bool "empty log" true (Wal.max_tid [] = None);
  let t9 = Tid.of_int 9 in
  Helpers.check_bool "from records" true
    (Wal.max_tid [ Wal.Begin Tid.a; Wal.Begin t9; Wal.Commit Tid.b ] = Some t9);
  (* A checkpoint's high-water mark survives truncation of the records
     that justified it. *)
  Helpers.check_bool "from checkpoint next_tid" true
    (Wal.max_tid [ Wal.Checkpoint (cp ~next_tid:10 []) ] = Some t9);
  Helpers.check_bool "from checkpoint live snapshot" true
    (Wal.max_tid [ Wal.Checkpoint (cp ~live:[ (t9, []) ] []) ] = Some t9)

(* A crash-surviving prefix keeps the log's metrics attachment. *)
let test_prefix_carries_metrics () =
  let wal = Wal.create () in
  let reg = Tm_obs.Metrics.create () in
  Wal.attach_metrics wal reg;
  Wal.append wal (Wal.Begin Tid.a);
  let before =
    Tm_obs.Metrics.counter_value reg "tm_wal_appends_total"
      ~labels:[ ("kind", "begin") ]
  in
  Wal.append (Wal.prefix wal 1) (Wal.Begin Tid.b);
  Helpers.check_int "append through prefix counted" (before + 1)
    (Tm_obs.Metrics.counter_value reg "tm_wal_appends_total"
       ~labels:[ ("kind", "begin") ])

(* Regression: aborting a transaction that never reached the log must not
   append an Abort record for an unknown tid. *)
let test_abort_not_begun_not_logged () =
  let wal = Wal.create () in
  let d = make wal in
  Durable.abort d Tid.a;
  Helpers.check_int "no record for unknown txn" 0 (Wal.length wal);
  let module DD = Tm_engine.Durable_database in
  let wal2 = Wal.create () in
  let db =
    DD.create ~wal:wal2
      [
        Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
          ~recovery:Recovery.UIP ();
      ]
  in
  let t = DD.begin_txn db in
  DD.abort db t;  (* begun but never logged: nothing to undo *)
  Helpers.check_int "no record for unlogged txn" 0 (Wal.length wal2)

(* Regression: recovery must seed tid allocation above every tid in the
   log, else a post-recovery transaction can reuse a crash loser's tid
   and replay merges their operations. *)
let test_no_tid_reuse_after_recovery () =
  let module DD = Tm_engine.Durable_database in
  let wal = Wal.create () in
  let rebuild () =
    [
      Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
        ~recovery:Recovery.UIP ();
    ]
  in
  let db = DD.create ~wal (rebuild ()) in
  let a = DD.begin_txn db in
  ignore (DD.invoke db a ~obj:"BA" (deposit_inv 5));
  (* crash with [a] in flight *)
  let db', losers = recover_exn (DD.recover ~wal ~rebuild ()) in
  Helpers.check_bool "a lost" true (Tid.Set.mem a losers);
  let b = DD.begin_txn db' in
  Helpers.check_bool "fresh tid after recovery" false (Tid.equal a b);
  ignore (DD.invoke db' b ~obj:"BA" (deposit_inv 7));
  Helpers.check_bool "b commits" true (DD.try_commit db' b = Ok ());
  (* second crash: the loser's operations must not ride b's commit *)
  let committed, losers2 = Wal.replay (Wal.records wal) in
  Alcotest.check Helpers.ops "only b's work is durable" [ BA.deposit 7 ] committed;
  Helpers.check_bool "a still a loser" true (Tid.Set.mem a losers2)

(* A mid-run fuzzy checkpoint followed by truncation preserves both the
   loser and the later commit of a transaction spanning the checkpoint. *)
let test_durable_database_truncated_recovery () =
  let module DD = Tm_engine.Durable_database in
  let wal = Wal.create () in
  let rebuild () =
    [
      Atomic_object.create ~spec:(BA.spec_with_initial 100)
        ~conflict:BA.nrbc_conflict ~recovery:Recovery.UIP ();
    ]
  in
  let db = DD.create ~wal (rebuild ()) in
  let a = DD.begin_txn db and b = DD.begin_txn db in
  ignore (DD.invoke db a ~obj:"BA" (deposit_inv 5));
  ignore (DD.invoke db b ~obj:"BA" (deposit_inv 2));
  DD.checkpoint db;  (* both a and b in flight *)
  ignore (DD.invoke db b ~obj:"BA" (deposit_inv 4));
  Helpers.check_bool "b commits" true (DD.try_commit db b = Ok ());
  ignore (Wal.truncate_to_checkpoint wal);
  let db', losers = recover_exn (DD.recover ~wal ~rebuild ()) in
  Helpers.check_bool "a lost" true (Tid.Set.mem a losers);
  Helpers.check_bool "b not lost" false (Tid.Set.mem b losers);
  let o = List.hd (Tm_engine.Database.objects (DD.database db')) in
  Alcotest.check Helpers.ops "b's pre- and post-checkpoint ops survive"
    [ BA.deposit 2; BA.deposit 4 ]
    (Atomic_object.committed_ops o)

let test_durable_end_to_end () =
  let wal = Wal.create () in
  let d = make wal in
  let run tid inv =
    match Durable.invoke d tid inv with
    | Atomic_object.Executed op -> op
    | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out
  in
  ignore (run Tid.a (deposit_inv 5));
  Durable.commit d Tid.a;
  ignore (run Tid.b (deposit_inv 3));
  (* crash before B commits: log has A's commit only *)
  let recovered, losers =
    recover_exn
      (Durable.recover ~spec:BA.spec ~conflict:BA.nrbc_conflict
         ~recovery:Recovery.UIP wal)
  in
  Helpers.check_bool "B lost" true (Tid.Set.mem Tid.b losers);
  Alcotest.check Helpers.ops "A's work survives" [ BA.deposit 5 ]
    (Durable.committed_ops recovered);
  (* the recovered object serves correct responses *)
  let t = Tid.of_int 40 in
  match Durable.invoke recovered t balance_inv with
  | Atomic_object.Executed op -> Alcotest.check Helpers.op "balance 5" (BA.balance 5) op
  | out -> Alcotest.failf "unexpected %a" Atomic_object.pp_outcome out

let test_write_ahead_rule () =
  (* The commit record precedes the commit's effects: a log that ends
     exactly at the commit record still recovers the transaction. *)
  let wal = Wal.create () in
  let d = make wal in
  ignore (Durable.invoke d Tid.a (deposit_inv 5));
  Durable.commit d Tid.a;
  let n = Wal.length wal in
  let committed, _ = Wal.replay (Wal.records (Wal.prefix wal n)) in
  Alcotest.check Helpers.ops "durable at commit record" [ BA.deposit 5 ] committed

(* Crash injection: drive a random multi-transaction workload through a
   durable object, then recover from *every* prefix of the log and check
   (a) replay legality, (b) the committed set matches the commit records
   in the prefix, (c) recovery is idempotent. *)
let crash_injection recovery seed =
  let wal = Wal.create () in
  let d = make ~recovery wal in
  let rng = Random.State.make [| seed |] in
  let active = ref [] in
  let next = ref 0 in
  for _ = 1 to 60 do
    if List.length !active < 4 then begin
      let t = Tid.of_int !next in
      incr next;
      active := t :: !active
    end;
    match !active with
    | [] -> ()
    | ts -> (
        let t = List.nth ts (Random.State.int rng (List.length ts)) in
        let finish f =
          f d t;
          active := List.filter (fun x -> not (Tid.equal x t)) !active
        in
        match Random.State.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 | 5 ->
            let inv =
              match Random.State.int rng 3 with
              | 0 -> deposit_inv (1 + Random.State.int rng 2)
              | 1 -> withdraw_inv (1 + Random.State.int rng 2)
              | _ -> balance_inv
            in
            ignore (Durable.invoke d t inv)
        | 6 | 7 -> finish Durable.commit
        | 8 -> finish Durable.abort
        | _ -> if Random.State.int rng 4 = 0 then Durable.checkpoint d)
  done;
  let full = Wal.records wal in
  for cut = 0 to List.length full do
    let log = Wal.prefix wal cut in
    let committed, _losers = Wal.replay (Wal.records log) in
    (* (a) replay legality *)
    Helpers.check_bool
      (Fmt.str "prefix %d legal" cut)
      true (Spec.legal BA.spec committed);
    (* (b) committed ops = concatenation per commit record *)
    let expected_commits =
      List.filter (function Wal.Commit _ -> true | _ -> false) (Wal.records log)
    in
    let distinct_committed_txns =
      List.sort_uniq Tid.compare
        (List.filter_map (function Wal.Commit t -> Some t | _ -> None) (Wal.records log))
    in
    Helpers.check_int
      (Fmt.str "prefix %d commit records distinct" cut)
      (List.length expected_commits)
      (List.length distinct_committed_txns);
    (* (c) idempotence: recovering twice equals recovering once *)
    let r1, _ =
      recover_exn
        (Durable.recover ~spec:BA.spec ~conflict:BA.nrbc_conflict
           ~recovery:Recovery.UIP log)
    in
    Helpers.check_bool
      (Fmt.str "prefix %d recovered state matches replay" cut)
      true
      (List.equal Op.equal (Durable.committed_ops r1) committed)
  done

let test_crash_injection_uip () = crash_injection Recovery.UIP 101
let test_crash_injection_du () = crash_injection Recovery.DU 202

(* Multi-object durability: one commit record covers every object a
   transaction touched — after recovery from any prefix, a transfer is
   visible at both accounts or neither. *)
let test_durable_database_atomic_commitment () =
  let wal = Wal.create () in
  let funded = BA.spec_with_initial 100 in
  let rebuild () =
    List.init 2 (fun i ->
        Atomic_object.create
          ~spec:(Spec.rename funded (Fmt.str "BA%d" i))
          ~conflict:BA.nrbc_conflict ~recovery:Recovery.UIP ())
  in
  let module DD = Tm_engine.Durable_database in
  let db = DD.create ~wal (rebuild ()) in
  (* transfer 30 from BA0 to BA1, committed *)
  let a = DD.begin_txn db in
  ignore (DD.invoke db a ~obj:"BA0" (withdraw_inv 30));
  ignore (DD.invoke db a ~obj:"BA1" (deposit_inv 30));
  Helpers.check_bool "committed" true (DD.try_commit db a = Ok ());
  (* a second transfer crashes mid-flight *)
  let b = DD.begin_txn db in
  ignore (DD.invoke db b ~obj:"BA0" (withdraw_inv 10));
  ignore (DD.invoke db b ~obj:"BA1" (deposit_inv 10));
  (* crash: recover from every prefix and check the invariant:
     total money is 200 iff both or neither halves of each transfer
     survive; per-object replay is always legal *)
  for cut = 0 to Wal.length wal do
    let log = Wal.prefix wal cut in
    let db', _losers = recover_exn (DD.recover ~wal:log ~rebuild ()) in
    let balance obj =
      match DD.invoke db' (DD.begin_txn db') ~obj balance_inv with
      | Atomic_object.Executed op -> Value.get_int op.Op.res
      | _ -> Alcotest.fail "balance failed"
    in
    let total = balance "BA0" + balance "BA1" in
    Helpers.check_int (Fmt.str "prefix %d conserves money" cut) 200 total;
    List.iter
      (fun o ->
        Helpers.check_bool
          (Fmt.str "prefix %d replay at %s" cut (Atomic_object.name o))
          true
          (Spec.legal (Atomic_object.spec o) (Atomic_object.committed_ops o)))
      (Tm_engine.Database.objects (DD.database db'))
  done

let test_durable_database_validation_abort_logged () =
  let wal = Wal.create () in
  let spec = BA.spec_with_initial 50 in
  let rebuild () =
    [ Atomic_object.create_optimistic ~spec ~conflict:BA.nfc_conflict ]
  in
  let module DD = Tm_engine.Durable_database in
  let db = DD.create ~wal (rebuild ()) in
  let a = DD.begin_txn db and b = DD.begin_txn db in
  ignore (DD.invoke db a ~obj:"BA" (withdraw_inv 10));
  ignore (DD.invoke db b ~obj:"BA" (withdraw_inv 10));
  Helpers.check_bool "A commits" true (DD.try_commit db a = Ok ());
  Helpers.check_bool "B fails validation" true (DD.try_commit db b <> Ok ());
  let db', _ = recover_exn (DD.recover ~wal ~rebuild ()) in
  let o = List.hd (Tm_engine.Database.objects (DD.database db')) in
  Alcotest.check Helpers.ops "only A's withdrawal durable" [ BA.withdraw_ok 10 ]
    (Atomic_object.committed_ops o)

(* --- the staged durability pipeline: LSNs, the flushed watermark and
   the group-commit combiner --- *)

let counting_sink () =
  let forces = ref 0 in
  ( {
      Wal.sink_append = (fun _ -> ());
      sink_force = (fun () -> incr forces);
      sink_attach = (fun _ -> ());
    },
    forces )

let test_lsn_monotone_sinkless_durable () =
  let wal = Wal.create () in
  Helpers.check_int "empty log" 0 (Wal.last_lsn wal);
  Wal.append wal (Wal.Begin Tid.a);
  Helpers.check_int "lsn counts appends" 1 (Wal.last_lsn wal);
  Wal.append wal (Wal.Operation (Tid.a, BA.deposit 1));
  Wal.append wal (Wal.Commit Tid.a);
  Helpers.check_int "lsn 3" 3 (Wal.last_lsn wal);
  (* a sink-less log's stable storage is the list itself *)
  Helpers.check_int "durable by fiat" 3 (Wal.flushed_lsn wal);
  Wal.force_upto wal 3 (* and the barrier is a non-blocking no-op *)

let test_force_upto_batches_commits () =
  let wal = Wal.create () in
  let reg = Tm_obs.Metrics.create () in
  Wal.attach_metrics wal reg;
  let sink, forces = counting_sink () in
  Wal.set_sink wal sink;
  List.iter (Wal.append wal)
    [
      Wal.Begin Tid.a;
      Wal.Operation (Tid.a, BA.deposit 1);
      Wal.Commit Tid.a;
      Wal.Begin Tid.b;
      Wal.Operation (Tid.b, BA.deposit 2);
      Wal.Commit Tid.b;
    ];
  Helpers.check_int "nothing certified before a force" 0 (Wal.flushed_lsn wal);
  let lsn = Wal.last_lsn wal in
  Wal.force_upto wal lsn;
  Helpers.check_int "one barrier covers the whole batch" 1 !forces;
  Helpers.check_int "watermark at the end" lsn (Wal.flushed_lsn wal);
  (* already durable: asking again must not hit the device *)
  Wal.force_upto wal lsn;
  Wal.force_upto wal 1;
  Helpers.check_int "no futile barrier" 1 !forces;
  List.iter (Wal.append wal) [ Wal.Begin Tid.c; Wal.Commit Tid.c ];
  Wal.force wal;
  Helpers.check_int "second batch, second barrier" 2 !forces;
  Helpers.check_int "tm_wal_forces_total counts device barriers" 2
    (Tm_obs.Metrics.counter_value reg "tm_wal_forces_total");
  Helpers.check_int "tm_wal_group_commits_total" 2
    (Tm_obs.Metrics.counter_value reg "tm_wal_group_commits_total");
  let h = Tm_obs.Metrics.histogram reg "tm_wal_group_commit_batch" in
  Helpers.check_int "two batches observed" 2 (Tm_obs.Metrics.Histogram.count h);
  Helpers.check_bool "batch sizes 2 then 1" true
    (Tm_obs.Metrics.Histogram.sum h = 3.)

let test_set_sink_marks_existing_durable () =
  (* Records present before the sink attaches came *from* the device
     (Disk_wal.load): attaching must not schedule them for re-flushing. *)
  let wal = Wal.create () in
  List.iter (Wal.append wal) [ Wal.Begin Tid.a; Wal.Commit Tid.a ];
  let sink, forces = counting_sink () in
  Wal.set_sink wal sink;
  Helpers.check_int "pre-sink records already durable" 2 (Wal.flushed_lsn wal);
  Wal.force wal;
  Helpers.check_int "no barrier needed" 0 !forces

let test_failed_flush_leaves_combiner_usable () =
  let wal = Wal.create () in
  let calls = ref 0 in
  let sink =
    {
      Wal.sink_append = (fun _ -> ());
      sink_force =
        (fun () ->
          incr calls;
          if !calls = 1 then failwith "device hiccup");
      sink_attach = (fun _ -> ());
    }
  in
  Wal.set_sink wal sink;
  Wal.append wal (Wal.Begin Tid.a);
  (match Wal.force wal with
  | () -> Alcotest.fail "barrier failure must propagate"
  | exception Failure _ -> ());
  Helpers.check_int "watermark unmoved by the failed flush" 0 (Wal.flushed_lsn wal);
  (* the combiner's busy flag must have been cleared *)
  Wal.force wal;
  Helpers.check_int "second attempt certifies" 1 (Wal.flushed_lsn wal);
  Helpers.check_int "device asked twice" 2 !calls

let suite =
  [
    Alcotest.test_case "replay basic" `Quick test_replay_basic;
    Alcotest.test_case "replay commit order" `Quick test_replay_commit_order;
    Alcotest.test_case "replay abort" `Quick test_replay_abort;
    Alcotest.test_case "replay checkpoint" `Quick test_replay_checkpoint;
    Alcotest.test_case "checkpoint keeps pre-checkpoint loser" `Quick
      test_checkpoint_keeps_pre_checkpoint_loser;
    Alcotest.test_case "checkpoint live txn commits later" `Quick
      test_checkpoint_live_txn_commits_later;
    Alcotest.test_case "fuzzy checkpoint round-trip" `Quick
      test_fuzzy_checkpoint_roundtrip;
    Alcotest.test_case "truncate to checkpoint" `Quick test_truncate_to_checkpoint;
    Alcotest.test_case "max tid" `Quick test_max_tid;
    Alcotest.test_case "prefix carries metrics" `Quick test_prefix_carries_metrics;
    Alcotest.test_case "abort of unknown txn not logged" `Quick
      test_abort_not_begun_not_logged;
    Alcotest.test_case "no tid reuse after recovery" `Quick
      test_no_tid_reuse_after_recovery;
    Alcotest.test_case "recovery from truncated log" `Quick
      test_durable_database_truncated_recovery;
    Alcotest.test_case "durable end-to-end" `Quick test_durable_end_to_end;
    Alcotest.test_case "write-ahead rule" `Quick test_write_ahead_rule;
    Alcotest.test_case "crash injection (UIP)" `Slow test_crash_injection_uip;
    Alcotest.test_case "crash injection (DU)" `Slow test_crash_injection_du;
    Alcotest.test_case "multi-object atomic commitment" `Quick
      test_durable_database_atomic_commitment;
    Alcotest.test_case "validation abort logged" `Quick
      test_durable_database_validation_abort_logged;
    Alcotest.test_case "LSNs monotone, sink-less durable by fiat" `Quick
      test_lsn_monotone_sinkless_durable;
    Alcotest.test_case "force_upto batches commits" `Quick
      test_force_upto_batches_commits;
    Alcotest.test_case "set_sink marks existing records durable" `Quick
      test_set_sink_marks_existing_durable;
    Alcotest.test_case "failed flush leaves combiner usable" `Quick
      test_failed_flush_leaves_combiner_usable;
  ]
