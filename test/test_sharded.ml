(* The sharded engine: router + cross-shard two-phase commit.

   Unit tests pin the 2PC building blocks — the in-doubt analysis
   (Two_phase), presumed-abort resolution at recovery, prepare-failure
   rollback, shard-stamped frames — and the QCheck property establishes
   the refinement the whole refactor hangs on: a workload pushed through
   [Sharded_database] (one shard, or several shards on disjoint keys)
   commits exactly the state the unsharded [Durable_database] commits
   under the same script. *)

open Tm_core
module Wal = Tm_engine.Wal
module Wal_inspect = Tm_engine.Wal_inspect
module Storage = Tm_engine.Storage
module Disk_wal = Tm_engine.Disk_wal
module Atomic_object = Tm_engine.Atomic_object
module Recovery = Tm_engine.Recovery
module DD = Tm_engine.Durable_database
module SD = Tm_engine.Sharded_database
module Two_phase = Tm_engine.Two_phase
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace
module Timeline = Tm_obs.Timeline
module BA = Tm_adt.Bank_account

let deposit_inv i = Op.invocation ~args:[ Value.int i ] "deposit"
let withdraw_inv i = Op.invocation ~args:[ Value.int i ] "withdraw"

(* A completed deposit on a named object — for hand-built logs, where
   the op's [obj] field is what routes it to its object at replay. *)
let dep_on name i = Op.make ~obj:name ~args:[ Value.int i ] "deposit" Value.ok

let account name =
  Atomic_object.create
    ~spec:(Spec.rename (BA.spec_with_initial 1_000) name)
    ~conflict:BA.nrbc_conflict ~recovery:Recovery.UIP ()

(* Object names routed to each of [n] shards: probe "BA<i>" until every
   shard has one.  The router is [Wal.partition_of_object], so the test
   never hard-codes the hash. *)
let names_per_shard n =
  let found = Array.make n None in
  let remaining = ref n in
  let i = ref 0 in
  while !remaining > 0 do
    let name = Fmt.str "BA%d" !i in
    let s = Wal.partition_of_object ~workers:n name in
    if found.(s) = None then begin
      found.(s) <- Some name;
      decr remaining
    end;
    incr i
  done;
  Array.map Option.get found

let committed_by_name objs =
  List.map (fun o -> (Atomic_object.name o, Atomic_object.committed_ops o)) objs
  |> List.sort compare

(* --- shard-stamped frames (satellite: v2 shard id end to end) --- *)

let test_mixed_shard_roundtrip () =
  (* A dump interleaving three shards' frames: the histogram sees all
     three, and select_shard slices each shard's records back out
     byte-identically. *)
  let rec_of i = Wal.Begin (Tid.of_int i) in
  let frames =
    [ (0, rec_of 0); (7, rec_of 1); (0, rec_of 2); (3, rec_of 3); (7, rec_of 4) ]
  in
  let bytes =
    String.concat ""
      (List.map (fun (s, r) -> Wal.Codec.encode ~shard:s r) frames)
  in
  let summary = Wal_inspect.inspect bytes in
  Alcotest.(check (list (pair int int)))
    "by_shard histogram" [ (0, 2); (3, 1); (7, 2) ]
    summary.Wal_inspect.by_shard;
  List.iter
    (fun s ->
      let sliced = Wal_inspect.select_shard bytes s in
      let expect =
        String.concat ""
          (List.filter_map
             (fun (s', r) ->
               if s' = s then Some (Wal.Codec.encode ~shard:s r) else None)
             frames)
      in
      Alcotest.(check string) (Fmt.str "slice shard %d" s) expect sliced)
    [ 0; 3; 7 ];
  Alcotest.(check string) "absent shard slices empty" ""
    (Wal_inspect.select_shard bytes 5)

let test_disk_wal_stamps_shard () =
  let store = Storage.memory () in
  let dw = Disk_wal.create ~shard:3 store in
  let wal = Disk_wal.wal dw in
  List.iter (Wal.append wal)
    [ Wal.Begin Tid.a; Wal.Operation (Tid.a, BA.deposit 5); Wal.Commit Tid.a ];
  Wal.force wal;
  let summary = Wal_inspect.inspect (Storage.read_all store) in
  Alcotest.(check (list (pair int int)))
    "every frame stamped shard 3" [ (3, 3) ] summary.Wal_inspect.by_shard;
  (* Reload: the records round-trip and the shard id is forensic, not a
     filter — load accepts the stamped log and re-stamps its appends. *)
  match Disk_wal.load ~shard:3 store with
  | Error c -> Alcotest.failf "load refused: %a" Wal.Codec.pp_corruption c
  | Ok dw2 ->
      Helpers.check_int "shard accessor" 3 (Disk_wal.shard dw2);
      Helpers.check_int "records survive" 3 (Wal.length (Disk_wal.wal dw2))

(* --- Two_phase analysis --- *)

let test_analyze_presumed_abort () =
  (* A prepared transaction with no surviving decision or completion is
     in doubt on every participant and resolves to abort. *)
  let logs =
    [|
      [ Wal.Begin Tid.a; Wal.Operation (Tid.a, BA.deposit 1); Wal.Prepare Tid.a ];
      [ Wal.Begin Tid.a; Wal.Operation (Tid.a, BA.deposit 2); Wal.Prepare Tid.a ];
    |]
  in
  let a = Two_phase.analyze logs in
  Helpers.check_bool "in doubt on 0" true (a.Two_phase.in_doubt.(0) = [ Tid.a ]);
  Helpers.check_bool "in doubt on 1" true (a.Two_phase.in_doubt.(1) = [ Tid.a ]);
  List.iter
    (fun s ->
      match Two_phase.resolutions a ~shard:s with
      | [ { Two_phase.tid; commit } ] ->
          Helpers.check_bool "tid" true (Tid.equal tid Tid.a);
          Helpers.check_bool "presumed abort" false commit
      | rs -> Alcotest.failf "shard %d: %d resolutions" s (List.length rs))
    [ 0; 1 ]

let test_analyze_decision_commits () =
  (* The coordinator's forced Decision{commit} is global commit
     evidence: every shard's in-doubt Prepare resolves to commit. *)
  let logs =
    [|
      [
        Wal.Begin Tid.a;
        Wal.Operation (Tid.a, BA.deposit 1);
        Wal.Prepare Tid.a;
        Wal.Decision { tid = Tid.a; commit = true };
      ];
      [ Wal.Begin Tid.a; Wal.Operation (Tid.a, BA.deposit 2); Wal.Prepare Tid.a ];
    |]
  in
  let a = Two_phase.analyze logs in
  List.iter
    (fun s ->
      match Two_phase.resolutions a ~shard:s with
      | [ { Two_phase.commit; _ } ] ->
          Helpers.check_bool (Fmt.str "shard %d commits" s) true commit
      | rs -> Alcotest.failf "shard %d: %d resolutions" s (List.length rs))
    [ 0; 1 ]

let test_analyze_peer_commit_is_evidence () =
  (* A phase-2 Commit that survived on one participant proves the
     decision even if the Decision record itself was lost. *)
  let logs =
    [|
      [
        Wal.Begin Tid.a;
        Wal.Operation (Tid.a, BA.deposit 1);
        Wal.Prepare Tid.a;
        Wal.Commit Tid.a;
      ];
      [ Wal.Begin Tid.a; Wal.Operation (Tid.a, BA.deposit 2); Wal.Prepare Tid.a ];
    |]
  in
  let a = Two_phase.analyze logs in
  Helpers.check_bool "resolved shard not in doubt" true
    (a.Two_phase.in_doubt.(0) = []);
  (match Two_phase.resolutions a ~shard:1 with
  | [ { Two_phase.commit; _ } ] -> Helpers.check_bool "commit" true commit
  | rs -> Alcotest.failf "%d resolutions" (List.length rs));
  (* An ordinary single-shard Commit (never prepared) is not 2PC
     evidence for anything. *)
  let logs' =
    [|
      [ Wal.Begin Tid.b; Wal.Commit Tid.b ];
      [ Wal.Begin Tid.a; Wal.Prepare Tid.a ];
    |]
  in
  let a' = Two_phase.analyze logs' in
  Helpers.check_bool "unrelated commit is no evidence" true
    (Tid.Set.is_empty a'.Two_phase.commit_evidence)

let test_analyze_abort_decision () =
  let logs =
    [|
      [ Wal.Prepare Tid.a; Wal.Decision { tid = Tid.a; commit = false } ];
      [ Wal.Prepare Tid.a ];
    |]
  in
  let a = Two_phase.analyze logs in
  match Two_phase.resolutions a ~shard:1 with
  | [ { Two_phase.commit; _ } ] -> Helpers.check_bool "abort" false commit
  | rs -> Alcotest.failf "%d resolutions" (List.length rs)

(* --- the live engine --- *)

let mk_sharded n =
  let wals = Array.init n (fun _ -> Wal.create ()) in
  let names = names_per_shard n in
  let objs = Array.to_list (Array.map account names) in
  (SD.create ~wals objs, wals, names)

let test_cross_shard_commit () =
  let db, wals, names = mk_sharded 2 in
  let t = SD.begin_txn db in
  ignore (SD.invoke db t ~obj:names.(0) (deposit_inv 5));
  ignore (SD.invoke db t ~obj:names.(1) (withdraw_inv 7));
  Helpers.check_bool "commits" true (SD.try_commit db t = Ok ());
  Helpers.check_int "committed count" 1 (SD.committed_count db);
  (* Both shards installed their halves. *)
  Helpers.check_int "shard 0 ops" 1
    (List.length (Atomic_object.committed_ops (SD.find_object db names.(0))));
  Helpers.check_int "shard 1 ops" 1
    (List.length (Atomic_object.committed_ops (SD.find_object db names.(1))));
  (* The protocol footprint: Prepare on both logs, exactly one Decision,
     on the coordinator (lowest participant shard). *)
  let count kind recs =
    List.length
      (List.filter (fun r -> Wal.record_kind r = kind) recs)
  in
  Array.iteri
    (fun s wal ->
      Helpers.check_int (Fmt.str "prepare on shard %d" s) 1
        (count "prepare" (Wal.records wal)))
    wals;
  Helpers.check_int "one decision, on the coordinator" 1
    (count "decision" (Wal.records wals.(0)));
  Helpers.check_int "no decision on the participant" 0
    (count "decision" (Wal.records wals.(1)));
  let m = SD.metrics db in
  Helpers.check_int "prepares metric" 2
    (Metrics.counter_value m "tm_2pc_prepares_total");
  Helpers.check_int "cross metric" 1
    (Metrics.counter_value m "tm_shard_cross_txn_total")

let test_prepare_failure_aborts_everywhere () =
  (* An optimistic object validates at prepare time: a conflicting
     writer that slips between execute and prepare fails the vote, and
     the rollback must reach every participant — including the shard
     that already voted yes. *)
  let n = 2 in
  let names = names_per_shard n in
  let opt_name = names.(1) in
  let objs =
    [
      account names.(0);
      Atomic_object.create_optimistic
        ~spec:(Spec.rename (BA.spec_with_initial 1_000) opt_name)
        ~conflict:BA.nfc_conflict;
    ]
  in
  let wals = Array.init n (fun _ -> Wal.create ()) in
  let db = SD.create ~wals objs in
  let t = SD.begin_txn db in
  ignore (SD.invoke db t ~obj:names.(0) (deposit_inv 5));
  ignore (SD.invoke db t ~obj:opt_name (withdraw_inv 7));
  (* The interloper invalidates t's read set on the optimistic shard. *)
  let u = SD.begin_txn db in
  ignore (SD.invoke db u ~obj:opt_name (withdraw_inv 900));
  Helpers.check_bool "interloper commits" true (SD.try_commit db u = Ok ());
  (match SD.try_commit db t with
  | Ok () -> Alcotest.fail "t must fail validation"
  | Error _ -> ());
  (* Nothing of t survives anywhere: the yes-voter rolled back too. *)
  let ops0 = Atomic_object.committed_ops (SD.find_object db names.(0)) in
  Helpers.check_int "yes-voter rolled back" 0 (List.length ops0);
  let m = SD.metrics db in
  Helpers.check_int "prepare-phase abort counted" 1
    (Metrics.counter_value m "tm_2pc_aborts_total"
       ~labels:[ ("phase", "prepare") ]);
  (* The logs hold no decision for t — presumed abort needs none. *)
  Array.iter
    (fun wal ->
      Helpers.check_bool "no decision logged" true
        (List.for_all
           (fun r -> Wal.record_kind r <> "decision")
           (Wal.records wal)))
    wals

let test_checkpoint_when_idle () =
  let db, _, names = mk_sharded 2 in
  let t = SD.begin_txn db in
  ignore (SD.invoke db t ~obj:names.(0) (deposit_inv 5));
  ignore (SD.invoke db t ~obj:names.(1) (deposit_inv 6));
  Helpers.check_bool "commits" true (SD.try_commit db t = Ok ());
  Helpers.check_bool "checkpoint taken when no 2PC in flight" true
    (SD.checkpoint db)

(* --- recovery-time in-doubt resolution on the real engine --- *)

let recover_names n wals =
  let names = names_per_shard n in
  let rebuild () = Array.to_list (Array.map account names) in
  match SD.recover ~wals ~rebuild () with
  | Error e -> Alcotest.failf "recover refused: %a" Recovery.pp_error e
  | Ok (db, losers) -> (db, losers, names)

let test_recover_in_doubt_commits_with_evidence () =
  let n = 2 in
  let names = names_per_shard n in
  let tid = Tid.of_int 0 in
  let wals = Array.init n (fun _ -> Wal.create ()) in
  (* Crash after the forced Decision but before any completion. *)
  List.iter (Wal.append wals.(0))
    [
      Wal.Begin tid;
      Wal.Operation (tid, dep_on names.(0) 5);
      Wal.Prepare tid;
      Wal.Decision { tid; commit = true };
    ];
  List.iter (Wal.append wals.(1))
    [ Wal.Begin tid; Wal.Operation (tid, dep_on names.(1) 7); Wal.Prepare tid ];
  let db, losers, names = recover_names n wals in
  ignore names;
  Helpers.check_bool "not a loser" false (Tid.Set.mem tid losers);
  Array.iteri
    (fun s wal ->
      let got =
        List.concat_map
          (fun o -> Atomic_object.committed_ops o)
          (Tm_engine.Database.objects
             (Tm_engine.Shard.database (SD.shards db).(s)))
      in
      Helpers.check_int (Fmt.str "shard %d installed the op" s) 1
        (List.length got);
      (* Resolution wrote a real outcome: recovering the same logs again
         finds nothing in doubt. *)
      ignore wal)
    wals;
  let a = Two_phase.analyze (Array.map Wal.records wals) in
  Array.iter
    (fun d -> Helpers.check_bool "nothing left in doubt" true (d = []))
    a.Two_phase.in_doubt

let test_recover_in_doubt_presumed_abort () =
  let n = 2 in
  let names = names_per_shard n in
  let tid = Tid.of_int 0 in
  let wals = Array.init n (fun _ -> Wal.create ()) in
  (* Crash between the prepares and the decision: no evidence anywhere. *)
  List.iter (Wal.append wals.(0))
    [ Wal.Begin tid; Wal.Operation (tid, dep_on names.(0) 5); Wal.Prepare tid ];
  List.iter (Wal.append wals.(1))
    [ Wal.Begin tid; Wal.Operation (tid, dep_on names.(1) 7); Wal.Prepare tid ];
  let db, losers, _names = recover_names n wals in
  (* Resolution wrote a real Abort record per participant before the
     replay, so the transaction is an explicit abort there — not a
     torn-off crash loser — and a second recovery finds nothing in
     doubt. *)
  Helpers.check_bool "not a replay loser (explicitly aborted)" false
    (Tid.Set.mem tid losers);
  List.iter
    (fun o ->
      Helpers.check_int
        (Fmt.str "%s committed nothing" (Atomic_object.name o))
        0
        (List.length (Atomic_object.committed_ops o)))
    (SD.objects db);
  let m = SD.metrics db in
  (* One resolution per in-doubt participant: both shards held a
     dangling Prepare. *)
  Helpers.check_int "recovery aborts counted per participant" 2
    (Metrics.counter_value m "tm_2pc_aborts_total"
       ~labels:[ ("phase", "recovery") ]);
  let a = Two_phase.analyze (Array.map Wal.records wals) in
  Array.iter
    (fun d -> Helpers.check_bool "nothing left in doubt" true (d = []))
    a.Two_phase.in_doubt

(* --- resolution events: the structured audit trail --- *)

let test_resolution_events_evidence_kinds () =
  let logs =
    [|
      (* a: in doubt here, the Decision survives on shard 1 *)
      [ Wal.Prepare Tid.a ];
      [ Wal.Prepare Tid.a; Wal.Decision { tid = Tid.a; commit = true } ];
      (* b: in doubt here, a peer's phase-2 Commit survives on shard 3 *)
      [ Wal.Prepare Tid.b ];
      [ Wal.Prepare Tid.b; Wal.Commit Tid.b ];
      (* c: no evidence anywhere — presumed abort *)
      [ Wal.Prepare Tid.c ];
    |]
  in
  let evs = Two_phase.resolution_events (Two_phase.analyze logs) in
  (* shards 0, 1 (its own prepare has no local outcome either), 2, 4 *)
  Helpers.check_int "event count" 4 (List.length evs);
  let find shard = List.find (fun e -> e.Two_phase.ev_shard = shard) evs in
  let e0 = find 0 in
  Helpers.check_bool "decision evidence commits" true
    (e0.Two_phase.ev_commit
    && e0.Two_phase.ev_evidence = Two_phase.Decision_record);
  let e2 = find 2 in
  Helpers.check_bool "phase-2 evidence commits" true
    (e2.Two_phase.ev_commit
    && e2.Two_phase.ev_evidence = Two_phase.Phase2_record);
  let e4 = find 4 in
  Helpers.check_bool "no evidence presumes abort" true
    ((not e4.Two_phase.ev_commit)
    && e4.Two_phase.ev_evidence = Two_phase.Presumed);
  (* the JSONL render feeds straight back into the report parser *)
  let jsonl =
    "{\"meta\":{\"schema\":\"tm-2pc/1\",\"binary\":\"test\"}}\n"
    ^ Two_phase.events_to_jsonl evs
  in
  match Tm_obs.Report.of_sources ~audit_jsonl:jsonl () with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      Helpers.check_int "report parses every event" 4
        (List.length rep.Tm_obs.Report.audit)

let test_resolution_idempotent_after_recovery () =
  let n = 2 in
  let names = names_per_shard n in
  let tid = Tid.of_int 0 in
  let wals = Array.init n (fun _ -> Wal.create ()) in
  List.iter (Wal.append wals.(0))
    [
      Wal.Begin tid;
      Wal.Operation (tid, dep_on names.(0) 5);
      Wal.Prepare tid;
      Wal.Decision { tid; commit = true };
    ];
  List.iter (Wal.append wals.(1))
    [ Wal.Begin tid; Wal.Operation (tid, dep_on names.(1) 7); Wal.Prepare tid ];
  let rebuild () = Array.to_list (Array.map account names) in
  let first = ref [] in
  (match SD.recover ~audit:(fun evs -> first := evs) ~wals ~rebuild () with
  | Error e -> Alcotest.failf "recover refused: %a" Recovery.pp_error e
  | Ok (db, _) ->
      Helpers.check_int "resolved commits counted" 2
        (Metrics.counter_value (SD.metrics db)
           ~labels:[ ("evidence", "decision"); ("outcome", "commit") ]
           "tm_2pc_resolved_total"));
  Helpers.check_int "first recovery audits both dangling prepares" 2
    (List.length !first);
  List.iter
    (fun e ->
      Helpers.check_bool "decision evidence, commit outcome" true
        (e.Two_phase.ev_commit
        && e.Two_phase.ev_evidence = Two_phase.Decision_record))
    !first;
  (* Recovery appended real outcomes, so re-analyzing the same logs — or
     recovering them again — finds nothing in doubt and audits nothing. *)
  Helpers.check_bool "re-analysis emits no events" true
    (Two_phase.resolution_events (Two_phase.analyze (Array.map Wal.records wals))
    = []);
  let second = ref None in
  (match SD.recover ~audit:(fun evs -> second := Some evs) ~wals ~rebuild () with
  | Error e -> Alcotest.failf "second recover refused: %a" Recovery.pp_error e
  | Ok (db, _) ->
      Helpers.check_int "second recovery resolves nothing" 0
        (Metrics.counter_value (SD.metrics db)
           ~labels:[ ("evidence", "decision"); ("outcome", "commit") ]
           "tm_2pc_resolved_total"));
  Helpers.check_bool "second audit trail is empty" true (!second = Some [])

(* --- the shared trace recorder: 2PC spans with one logical clock --- *)

let test_sharded_trace_spans () =
  let db, _wals, names = mk_sharded 2 in
  let tr = Trace.create () in
  SD.set_trace db tr;
  let t = SD.begin_txn db in
  ignore (SD.invoke db t ~obj:names.(0) (deposit_inv 5));
  ignore (SD.invoke db t ~obj:names.(1) (deposit_inv 7));
  Helpers.check_bool "commits" true (SD.try_commit db t = Ok ());
  let events = Trace.events tr in
  let of_kind name =
    List.filter (fun e -> Trace.kind_name e.Trace.kind = name) events
  in
  Helpers.check_int "a prepare append per participant" 2
    (List.length (of_kind "prepare_append"));
  Helpers.check_int "a durable prepare per participant" 2
    (List.length (of_kind "prepare_force"));
  Helpers.check_int "exactly one decision" 1
    (List.length (of_kind "decision_force"));
  Helpers.check_int "a completion per participant" 2
    (List.length (of_kind "completion"));
  (* one shared clock across shards: every durable prepare precedes the
     decision, which precedes every completion *)
  let dec = List.hd (of_kind "decision_force") in
  List.iter
    (fun e ->
      Helpers.check_bool "prepare before decision" true
        (e.Trace.ts < dec.Trace.ts))
    (of_kind "prepare_force");
  List.iter
    (fun e ->
      Helpers.check_bool "completion after decision" true
        (e.Trace.ts > dec.Trace.ts))
    (of_kind "completion");
  (* every 2PC span carries the same global trace id *)
  let gtid_of e =
    match e.Trace.kind with
    | Trace.Prepare_append { gtid; _ }
    | Trace.Prepare_force { gtid; _ }
    | Trace.Decision_force { gtid; _ }
    | Trace.Completion { gtid; _ } -> Some gtid
    | _ -> None
  in
  Helpers.check_bool "one gtid across all spans" true
    (List.sort_uniq compare (List.filter_map gtid_of events) = [ 0 ]);
  (* and the 2PC phases still tile the transaction's span *)
  let txns = Timeline.of_events events in
  List.iter
    (fun t -> Helpers.check_bool "tiling" true (Timeline.consistent t))
    txns;
  List.iter
    (fun ph ->
      Helpers.check_bool
        (Fmt.str "%s phase observed" (Timeline.phase_name ph))
        true
        (List.exists (fun t -> Timeline.phase_total t ph > 0) txns))
    [ Timeline.Prepare; Timeline.Decide; Timeline.Complete ]

(* --- refinement: sharded == unsharded under the same script --- *)

(* A workload script: per transaction, the objects it touches (indices
   into a fixed name table) with deposit amounts, and whether it commits
   or aborts.  Deposits never fail validation, so both engines accept
   every step and the comparison is exact. *)
let script_gen ~objs =
  QCheck2.Gen.(
    list_size (1 -- 12)
      (pair
         (list_size (1 -- 4) (pair (0 -- (objs - 1)) (1 -- 9)))
         bool))

let run_unsharded names script =
  let wal = Wal.create () in
  let db = DD.create ~wal (Array.to_list (Array.map account names)) in
  List.iter
    (fun (touches, commit) ->
      let t = DD.begin_txn db in
      List.iter
        (fun (i, amt) ->
          ignore (DD.invoke db t ~obj:names.(i) (deposit_inv amt)))
        touches;
      if commit then ignore (DD.try_commit db t) else DD.abort db t)
    script;
  committed_by_name (Tm_engine.Database.objects (DD.database db))

let run_sharded ~shards names script =
  let wals = Array.init shards (fun _ -> Wal.create ()) in
  let db = SD.create ~wals (Array.to_list (Array.map account names)) in
  List.iter
    (fun (touches, commit) ->
      let t = SD.begin_txn db in
      List.iter
        (fun (i, amt) -> ignore (SD.invoke db t ~obj:names.(i) (deposit_inv amt)))
        touches;
      if commit then ignore (SD.try_commit db t) else SD.abort db t)
    script;
  (committed_by_name (SD.objects db), wals)

let check_equal_states name want got =
  if want <> got then
    Alcotest.failf "%s: states differ: %a vs %a" name
      Fmt.(list ~sep:semi (pair string (list Op.pp)))
      want
      Fmt.(list ~sep:semi (pair string (list Op.pp)))
      got

let prop_single_shard_equivalence =
  Helpers.qcheck ~count:60 "sharded(1) == unsharded"
    (script_gen ~objs:4)
    (fun script ->
      let names = Array.init 4 (fun i -> Fmt.str "BA%d" i) in
      let want = run_unsharded names script in
      let got, _ = run_sharded ~shards:1 names script in
      check_equal_states "single shard" want got;
      true)

let prop_multi_shard_disjoint_equivalence =
  (* Four shards, every transaction confined to one object — the
     sharded engine must still commit exactly the unsharded state, and
     afterwards recovery from its four logs must reproduce it. *)
  QCheck2.Gen.(
    list_size (1 -- 12) (pair (pair (0 -- 3) (list_size (1 -- 4) (1 -- 9))) bool))
  |> fun gen ->
  Helpers.qcheck ~count:60 "sharded(4, disjoint keys) == unsharded" gen
    (fun script ->
      let script =
        List.map
          (fun ((i, amts), commit) ->
            (List.map (fun a -> (i, a)) amts, commit))
          script
      in
      let names = names_per_shard 4 in
      let want = run_unsharded names script in
      let got, wals = run_sharded ~shards:4 names script in
      check_equal_states "disjoint keys" want got;
      let rebuild () = Array.to_list (Array.map account names) in
      (match SD.recover ~wals ~rebuild () with
      | Error e -> Alcotest.failf "recover refused: %a" Recovery.pp_error e
      | Ok (db2, _) ->
          check_equal_states "recovered" want (committed_by_name (SD.objects db2)));
      true)

let prop_cross_shard_equivalence =
  (* Unrestricted scripts over 4 shards: multi-object transactions take
     the 2PC path; deposits always validate, so the committed state must
     still match the unsharded engine exactly. *)
  Helpers.qcheck ~count:40 "sharded(4, cross-shard) == unsharded"
    (script_gen ~objs:8)
    (fun script ->
      let names = names_per_shard 4 in
      let eight =
        Array.init 8 (fun i ->
            if i < 4 then names.(i) else Fmt.str "X%d" i)
      in
      let want = run_unsharded eight script in
      let got, _ = run_sharded ~shards:4 eight script in
      check_equal_states "cross shard" want got;
      true)

let suite =
  [
    Alcotest.test_case "mixed-shard frames round-trip + select" `Quick
      test_mixed_shard_roundtrip;
    Alcotest.test_case "disk wal stamps its shard id" `Quick
      test_disk_wal_stamps_shard;
    Alcotest.test_case "analyze: presumed abort without evidence" `Quick
      test_analyze_presumed_abort;
    Alcotest.test_case "analyze: decision record commits in-doubt" `Quick
      test_analyze_decision_commits;
    Alcotest.test_case "analyze: peer phase-2 commit is evidence" `Quick
      test_analyze_peer_commit_is_evidence;
    Alcotest.test_case "analyze: abort decision aborts" `Quick
      test_analyze_abort_decision;
    Alcotest.test_case "cross-shard commit: 2PC footprint" `Quick
      test_cross_shard_commit;
    Alcotest.test_case "prepare failure aborts on every shard" `Quick
      test_prepare_failure_aborts_everywhere;
    Alcotest.test_case "checkpoint proceeds when idle" `Quick
      test_checkpoint_when_idle;
    Alcotest.test_case "recovery commits in-doubt with evidence" `Quick
      test_recover_in_doubt_commits_with_evidence;
    Alcotest.test_case "recovery presumes abort without evidence" `Quick
      test_recover_in_doubt_presumed_abort;
    Alcotest.test_case "resolution events: evidence kinds" `Quick
      test_resolution_events_evidence_kinds;
    Alcotest.test_case "resolution is idempotent after recovery" `Quick
      test_resolution_idempotent_after_recovery;
    Alcotest.test_case "shared trace recorder: 2pc spans" `Quick
      test_sharded_trace_spans;
    prop_single_shard_equivalence;
    prop_multi_shard_disjoint_equivalence;
    prop_cross_shard_equivalence;
  ]
