(* Shared test utilities: Alcotest testables for core types, operation
   shorthands, and qcheck generators. *)

open Tm_core

let value = Alcotest.testable Value.pp Value.equal
let op = Alcotest.testable Op.pp Op.equal
let tid = Alcotest.testable Tid.pp Tid.equal
let event = Alcotest.testable Event.pp Event.equal

let history =
  Alcotest.testable History.pp (fun h k ->
      List.equal Event.equal (History.events h) (History.events k))

let ops = Alcotest.list op
let tids = Alcotest.list tid

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Bank-account shorthands used across suites. *)
module BA = Tm_adt.Bank_account

let dep = BA.deposit
let wok = BA.withdraw_ok
let wno = BA.withdraw_no
let bal = BA.balance

(* The worked example history of Section 3.3: A deposits 3 and reads
   balance 3; B withdraws 2 and reads balance 1; C's withdraw(2) fails;
   serializable exactly in the order A-B-C. *)
let paper_example_history =
  History.empty
  |> History.exec Tid.a (dep 3)
  |> History.exec Tid.b (wok 2)
  |> History.exec Tid.a (bal 3)
  |> History.invoke Tid.b ~obj:"BA" (Op.invocation "balance")
  |> History.commit_at Tid.a "BA"
  |> History.respond Tid.b ~obj:"BA" (Value.int 1)
  |> History.commit_at Tid.b "BA"
  |> History.exec Tid.c (wno 2)
  |> History.commit_at Tid.c "BA"

(* The Section 5 example: A deposits 5 and commits; B withdraws 3 and is
   still active. *)
let section5_history =
  History.empty
  |> History.exec Tid.a (dep 5)
  |> History.commit_at Tid.a "BA"
  |> History.exec Tid.b (wok 3)

let ba_env = Atomicity.env_of_list [ BA.spec ]

(* qcheck generator for random bank-account operations (drawn from the
   spec's generator alphabet). *)
let ba_op_gen =
  QCheck2.Gen.oneofl (Spec.generators BA.spec)

(* Random legal operation sequence of bounded length from a spec: walk the
   generator alphabet keeping only legal extensions. *)
let legal_seq_gen spec max_len =
  let open QCheck2.Gen in
  let gens = Spec.generators spec in
  let rec extend acc n =
    if n = 0 then return (List.rev acc)
    else
      oneofl gens >>= fun op ->
      if Spec.legal spec (List.rev (op :: acc)) then extend (op :: acc) (n - 1)
      else return (List.rev acc)
  in
  int_bound max_len >>= fun len -> extend [] len

(* One seed per process, honoring QCHECK_SEED so a failure is replayable:
   the failing test prints the seed, and rerunning under
   QCHECK_SEED=<seed> dune runtest reproduces the exact draw sequence. *)
let qcheck_seed =
  lazy
    (match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some seed -> seed
        | None -> Fmt.failwith "QCHECK_SEED=%S is not an integer" s)
    | None -> Random.State.bits (Random.State.make_self_init ()) land 0x3FFFFFFF)

let qcheck ?(count = 200) name gen prop =
  Alcotest.test_case name `Quick (fun () ->
      let seed = Lazy.force qcheck_seed in
      let rand = Random.State.make [| seed |] in
      try QCheck2.Test.check_exn ~rand (QCheck2.Test.make ~count ~name gen prop)
      with e ->
        Fmt.epr "[qcheck] %s failed — reproduce with QCHECK_SEED=%d@." name seed;
        raise e)
