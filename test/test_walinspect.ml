(* The restart observability surface: Wal_inspect forensics (reported
   corruption offsets must equal the byte positions the injector
   actually damaged), the restart profiler (deterministic-clock timing,
   phase tiling, metric export, end-to-end threading through
   Disk_wal.load + Durable_database.recover), and the report side of
   the tm_recovery_* family. *)

open Tm_core
module Wal = Tm_engine.Wal
module Wal_inspect = Tm_engine.Wal_inspect
module Storage = Tm_engine.Storage
module Disk_wal = Tm_engine.Disk_wal
module DD = Tm_engine.Durable_database
module Atomic_object = Tm_engine.Atomic_object
module Recovery = Tm_engine.Recovery
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace
module Profile = Tm_obs.Recovery_profile
module BA = Tm_adt.Bank_account

let deposit_inv i = Op.invocation ~args:[ Value.int i ] "deposit"

let rebuild () =
  [
    Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
      ~recovery:Recovery.UIP ();
  ]

(* A representative log: two commits, a mid-run fuzzy checkpoint, and
   one transaction left in flight (a loser). *)
let sample_records () =
  let wal = Wal.create () in
  let db = DD.create ~wal (rebuild ()) in
  let a = DD.begin_txn db in
  ignore (DD.invoke db a ~obj:"BA" (deposit_inv 5));
  Helpers.check_bool "a commits" true (DD.try_commit db a = Ok ());
  let b = DD.begin_txn db in
  ignore (DD.invoke db b ~obj:"BA" (deposit_inv 2));
  DD.checkpoint db;
  Helpers.check_bool "b commits" true (DD.try_commit db b = Ok ());
  let c = DD.begin_txn db in
  ignore (DD.invoke db c ~obj:"BA" (deposit_inv 1));
  (* crash with c in flight *)
  (Wal.records wal, b)

(* Byte offset of each record's frame, from the codec itself — the
   ground truth the inspector's reports are checked against. *)
let frame_offsets recs =
  let off = ref 0 in
  List.map
    (fun r ->
      let here = !off in
      off := !off + String.length (Wal.Codec.encode r);
      here)
    recs

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

let kind_count s kind =
  match List.assoc_opt kind s.Wal_inspect.by_kind with
  | Some st -> st.Wal_inspect.count
  | None -> Alcotest.failf "kind %s missing from by_kind" kind

(* ------------------------------------------------------------------ *)
(* Forensics on a clean image.                                         *)

let test_inspect_clean () =
  let recs, b = sample_records () in
  let bytes = Wal.Codec.encode_all recs in
  let s = Wal_inspect.inspect bytes in
  Helpers.check_int "records" (List.length recs) s.Wal_inspect.records;
  Helpers.check_int "total = clean" s.Wal_inspect.total_bytes
    s.Wal_inspect.clean_bytes;
  Helpers.check_int "total bytes" (String.length bytes)
    s.Wal_inspect.total_bytes;
  Alcotest.(check string) "clean" "clean" (Wal_inspect.damage_kind s.Wal_inspect.damage);
  Helpers.check_int "begins" 3 (kind_count s "begin");
  Helpers.check_int "operations" 3 (kind_count s "operation");
  Helpers.check_int "commits" 2 (kind_count s "commit");
  Helpers.check_int "aborts" 0 (kind_count s "abort");
  Helpers.check_int "checkpoints" 1 (kind_count s "checkpoint");
  (* frame byte extents tile the whole file *)
  let by_kind_bytes =
    List.fold_left
      (fun acc (_, st) -> acc + st.Wal_inspect.bytes)
      0 s.Wal_inspect.by_kind
  in
  Helpers.check_int "kind bytes tile the file" (String.length bytes) by_kind_bytes;
  Alcotest.(check (option (pair int int))) "lsn range"
    (Some (1, List.length recs))
    s.Wal_inspect.lsn_range;
  Helpers.check_int "committed txns" 2 s.Wal_inspect.committed_txns;
  Helpers.check_int "tids seen" 3 s.Wal_inspect.tids_seen;
  (match s.Wal_inspect.checkpoints with
  | [ cp ] ->
      (* the checkpoint carries a's committed deposit and b live with
         one logged operation *)
      Helpers.check_int "cp committed ops" 1 cp.Wal_inspect.cp_committed_ops;
      (match cp.Wal_inspect.cp_live with
      | [ (tid, ops) ] ->
          Helpers.check_bool "b live at checkpoint" true (Tid.equal tid b);
          Helpers.check_int "b's snapshot ops" 1 ops
      | live -> Alcotest.failf "expected 1 live txn, got %d" (List.length live));
      let offsets = frame_offsets recs in
      let cp_index = cp.Wal_inspect.cp_lsn - 1 in
      Helpers.check_int "checkpoint offset matches codec ground truth"
        (List.nth offsets cp_index) cp.Wal_inspect.cp_offset
  | cps -> Alcotest.failf "expected 1 checkpoint, got %d" (List.length cps));
  Helpers.check_int "replay tail after checkpoint"
    (List.length recs - (match s.Wal_inspect.checkpoints with
                         | [ cp ] -> cp.Wal_inspect.cp_lsn
                         | _ -> 0))
    s.Wal_inspect.records_after_last_checkpoint

(* ------------------------------------------------------------------ *)
(* Injected damage: the reported offset must be the damaged frame's
   start, and the verdict must match what Disk_wal.load does.           *)

let test_interior_flip_offset () =
  let recs, _ = sample_records () in
  let bytes = Wal.Codec.encode_all recs in
  let offsets = frame_offsets recs in
  (* flip a payload byte of an interior frame (index 2 of 9) *)
  let victim = 2 in
  let frame_start = List.nth offsets victim in
  let hdr = Wal.Codec.header_size Wal.Codec.write_version in
  let corrupted = flip_byte bytes (frame_start + hdr + 1) in
  let s = Wal_inspect.inspect corrupted in
  (match s.Wal_inspect.damage with
  | Wal_inspect.Interior c ->
      Helpers.check_int "reported offset = damaged frame start" frame_start
        c.Wal.Codec.offset
  | d -> Alcotest.failf "expected interior corruption, got %s" (Wal_inspect.damage_kind d));
  Helpers.check_int "clean prefix ends at the damage" frame_start
    s.Wal_inspect.clean_bytes;
  Helpers.check_int "records before the damage" victim s.Wal_inspect.records;
  (* recovery agrees: load refuses with the same offset *)
  match Disk_wal.load (Storage.of_string corrupted) with
  | Error c -> Helpers.check_int "load refuses at same offset" frame_start c.Wal.Codec.offset
  | Ok _ -> Alcotest.fail "load accepted interior corruption"

let test_tail_flip_is_torn () =
  let recs, _ = sample_records () in
  let bytes = Wal.Codec.encode_all recs in
  let offsets = frame_offsets recs in
  let last = List.length recs - 1 in
  let frame_start = List.nth offsets last in
  let hdr = Wal.Codec.header_size Wal.Codec.write_version in
  let corrupted = flip_byte bytes (frame_start + hdr + 1) in
  let s = Wal_inspect.inspect corrupted in
  (match s.Wal_inspect.damage with
  | Wal_inspect.Torn_tail c ->
      Helpers.check_int "torn tail at last frame" frame_start c.Wal.Codec.offset
  | d -> Alcotest.failf "expected torn tail, got %s" (Wal_inspect.damage_kind d));
  Helpers.check_int "all but the last record" last s.Wal_inspect.records;
  (* recovery agrees: load truncates and proceeds *)
  match Disk_wal.load (Storage.of_string corrupted) with
  | Ok dw ->
      Helpers.check_int "load dropped exactly the torn record" last
        (List.length (Wal.records (Disk_wal.wal dw)))
  | Error c -> Alcotest.failf "load refused a torn tail: %a" Wal.Codec.pp_corruption c

(* Every frame, both damage shapes: a byte flip inside frame k is
   interior corruption at offset(k) when intact frames follow, torn
   tail at offset(k) when k is last; a cut inside frame k is always a
   torn tail at offset(k) with exactly k records readable. *)
let test_damage_sweep () =
  let recs, _ = sample_records () in
  let bytes = Wal.Codec.encode_all recs in
  let offsets = frame_offsets recs in
  let n = List.length recs in
  List.iteri
    (fun k frame_start ->
      let flipped =
        flip_byte bytes (frame_start + Wal.Codec.header_size Wal.Codec.write_version)
      in
      let s = Wal_inspect.inspect flipped in
      let expect = if k = n - 1 then "torn_tail" else "interior_corruption" in
      Alcotest.(check string)
        (Fmt.str "flip in frame %d" k)
        expect
        (Wal_inspect.damage_kind s.Wal_inspect.damage);
      (match s.Wal_inspect.damage with
      | Wal_inspect.Interior c | Wal_inspect.Torn_tail c ->
          Helpers.check_int
            (Fmt.str "flip in frame %d reported at its start" k)
            frame_start c.Wal.Codec.offset
      | Wal_inspect.Clean -> Alcotest.fail "damage not detected");
      (* cut mid-frame: a crash that lost the tail from inside frame k *)
      let cut = String.sub bytes 0 (frame_start + 3) in
      let s = Wal_inspect.inspect cut in
      Alcotest.(check string)
        (Fmt.str "cut in frame %d" k)
        "torn_tail"
        (Wal_inspect.damage_kind s.Wal_inspect.damage);
      Helpers.check_int (Fmt.str "cut in frame %d keeps %d records" k k) k
        s.Wal_inspect.records;
      match s.Wal_inspect.damage with
      | Wal_inspect.Torn_tail c ->
          Helpers.check_int
            (Fmt.str "cut in frame %d reported at its start" k)
            frame_start c.Wal.Codec.offset
      | _ -> Alcotest.fail "cut not reported as torn tail")
    offsets

(* Per-frame version forensics: the histogram counts frames by format
   version across a mixed log; a frame carrying a future version is
   pinpointed by byte offset and reported version number. *)
let test_inspect_version_histogram () =
  let recs, _ = sample_records () in
  let v1 = Wal.Codec.encode_all ~version:Wal.Codec.v1 recs in
  let s1 = Wal_inspect.inspect v1 in
  Alcotest.(check (list (pair int int)))
    "pure v1 histogram"
    [ (1, List.length recs) ]
    s1.Wal_inspect.by_version;
  Alcotest.(check (option (pair int int))) "no foreign frame" None
    s1.Wal_inspect.foreign_version;
  (* a v1 log continued by the current binary: mixed versions *)
  let mixed = v1 ^ Wal.Codec.encode_all [ Wal.Commit (Tid.of_int 9) ] in
  let s = Wal_inspect.inspect mixed in
  Alcotest.(check (list (pair int int)))
    "mixed histogram"
    [ (1, List.length recs); (2, 1) ]
    s.Wal_inspect.by_version

let test_inspect_foreign_version () =
  let recs, _ = sample_records () in
  let bytes = Wal.Codec.encode_all recs in
  let b = Bytes.of_string bytes in
  (* the second frame claims format version 7 *)
  let off = List.nth (frame_offsets recs) 1 in
  Bytes.set b (off + 2) '\x07';
  let s = Wal_inspect.inspect (Bytes.to_string b) in
  Alcotest.(check (option (pair int int)))
    "foreign frame located by offset"
    (Some (off, 7))
    s.Wal_inspect.foreign_version

(* The replay digest pins recovered state, not bytes: the same records
   encoded as v1 and v2 digest identically, so a checked-in v1 log's
   recorded digest keeps holding after upgrades. *)
let test_replay_digest_version_stable () =
  let recs, _ = sample_records () in
  match
    ( Wal_inspect.replay_digest (Wal.Codec.encode_all ~version:Wal.Codec.v1 recs),
      Wal_inspect.replay_digest (Wal.Codec.encode_all recs) )
  with
  | Ok a, Ok b -> Alcotest.(check string) "digest is version-independent" a b
  | Error c, _ | _, Error c ->
      Alcotest.failf "digest failed: %a" Wal.Codec.pp_corruption c

(* ------------------------------------------------------------------ *)
(* The restart profiler, under a deterministic clock.                  *)

let fake_clock () =
  let now = ref 0. in
  ((fun () -> !now), fun d -> now := !now +. d)

let test_profile_phases_tile () =
  let clock, tick = fake_clock () in
  let p = Profile.create ~clock () in
  Profile.time p Profile.Storage_scan (fun () -> tick 2.);
  (* an outer scan containing an inner seeding phase: the outer phase is
     charged net of the inner one *)
  Profile.time_excluding p Profile.Log_scan ~minus:Profile.Checkpoint_seed
    (fun () ->
      tick 1.;
      Profile.time p Profile.Checkpoint_seed (fun () -> tick 3.);
      tick 0.5);
  let check_wall name expect ph =
    Alcotest.(check (float 1e-9)) name expect (Profile.phase_wall p ph)
  in
  check_wall "storage scan" 2.0 Profile.Storage_scan;
  check_wall "checkpoint seed" 3.0 Profile.Checkpoint_seed;
  check_wall "log scan excludes nested seeding" 1.5 Profile.Log_scan;
  Helpers.check_int "storage scan calls" 1 (Profile.phase_calls p Profile.Storage_scan);
  Helpers.check_int "log scan calls" 1 (Profile.phase_calls p Profile.Log_scan);
  Profile.finish p;
  Alcotest.(check (float 1e-9)) "end-to-end wall" 6.5 (Profile.total_wall p)

let test_profile_export_and_spans () =
  let clock, tick = fake_clock () in
  let p = Profile.create ~clock () in
  Profile.time p Profile.Object_replay (fun () -> tick 0.25);
  Profile.note_bytes_scanned p 1000;
  Profile.note_torn_bytes p 7;
  Profile.note_frame p;
  Profile.note_frame p;
  Profile.note_records_scanned p 2;
  Profile.note_checkpoint_seed p ~ops:5;
  Profile.note_object_replay p ~obj:"BA" 3;
  Profile.note_object_replay p ~obj:"ACC" 1;
  Profile.note_losers p 2;
  Profile.finish p;
  Alcotest.(check (list (pair string int)))
    "per-object replay, sorted"
    [ ("ACC", 1); ("BA", 3) ]
    (Profile.per_object p);
  let reg = Metrics.create () in
  Profile.export p reg;
  Helpers.check_int "bytes counter" 1000
    (Metrics.counter_value reg "tm_recovery_bytes_scanned_total");
  Helpers.check_int "torn counter" 7
    (Metrics.counter_value reg "tm_recovery_torn_bytes_total");
  Helpers.check_int "frames counter" 2
    (Metrics.counter_value reg "tm_recovery_frames_decoded_total");
  Helpers.check_int "seed ops counter" 5
    (Metrics.counter_value reg "tm_recovery_checkpoint_seed_ops_total");
  Helpers.check_int "per-object counter" 3
    (Metrics.counter_value reg
       ~labels:[ ("obj", "BA") ]
       "tm_recovery_object_replayed_ops_total");
  Alcotest.(check (option (float 1e-9))) "phase gauge"
    (Some 0.25)
    (Metrics.gauge_value reg
       ~labels:[ ("phase", "object_replay") ]
       "tm_recovery_phase_seconds");
  (* spans omit phases that neither ran nor counted anything *)
  let minimal = Profile.create ~clock () in
  Profile.note_object_replay minimal ~obj:"BA" 4;
  Alcotest.(check (list string)) "spans omit idle phases"
    [ "object_replay" ]
    (List.map (fun (n, _, _) -> n) (Profile.spans minimal));
  match List.find_opt (fun (n, _, _) -> n = "object_replay") (Profile.spans p) with
  | Some (_, wall_us, items) ->
      Helpers.check_int "replay span wall (us)" 250_000 wall_us;
      Helpers.check_int "replay span items" 4 items
  | None -> Alcotest.fail "object_replay span missing"

(* End to end: load + recover under one profile; counts must equal what
   the log actually contains, the registry must carry the export, and
   the trace must carry one recovery_phase span per reported phase. *)
let test_recover_with_profile () =
  let store = Storage.memory () in
  let dw = Disk_wal.create store in
  let wal = Disk_wal.wal dw in
  let db = DD.create ~wal (rebuild ()) in
  let a = DD.begin_txn db in
  ignore (DD.invoke db a ~obj:"BA" (deposit_inv 5));
  Helpers.check_bool "a commits" true (DD.try_commit db a = Ok ());
  let b = DD.begin_txn db in
  ignore (DD.invoke db b ~obj:"BA" (deposit_inv 2));
  (* crash with b in flight *)
  let image = Storage.read_all store in
  let profile = Profile.create () in
  let trace = Trace.create () in
  let loaded =
    match Disk_wal.load ~profile (Storage.of_string image) with
    | Ok dw -> dw
    | Error c -> Alcotest.failf "load: %a" Wal.Codec.pp_corruption c
  in
  let db', losers =
    match
      DD.recover ~trace ~profile ~wal:(Disk_wal.wal loaded) ~rebuild ()
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "recover failed"
  in
  Helpers.check_bool "b lost" true (Tid.Set.mem b losers);
  let n_records = List.length (Wal.records (Disk_wal.wal loaded)) in
  Helpers.check_int "bytes scanned = image size" (String.length image)
    (Profile.bytes_scanned profile);
  Helpers.check_int "frames decoded = records" n_records
    (Profile.frames_decoded profile);
  Helpers.check_int "records scanned = records" n_records
    (Profile.records_scanned profile);
  Helpers.check_int "replayed ops" 1 (Profile.replayed_ops profile);
  Alcotest.(check (list (pair string int))) "per-object"
    [ ("BA", 1) ]
    (Profile.per_object profile);
  Helpers.check_int "losers" 1 (Profile.loser_txns profile);
  (* export landed in the recovered database's registry *)
  let reg = Tm_engine.Database.metrics (DD.database db') in
  Helpers.check_int "registry: bytes scanned" (String.length image)
    (Metrics.counter_value reg "tm_recovery_bytes_scanned_total");
  Helpers.check_int "registry: replayed (pre-existing family)" 1
    (Metrics.counter_value reg "tm_recovery_replayed_ops_total");
  (* one recovery_phase trace span per profile span *)
  let phase_events =
    List.filter_map
      (fun e ->
        match e.Trace.kind with
        | Trace.Recovery_phase { phase; _ } -> Some phase
        | _ -> None)
      (Trace.events trace)
  in
  Alcotest.(check (list string)) "trace spans mirror profile spans"
    (List.map (fun (n, _, _) -> n) (Profile.spans profile))
    phase_events

(* The inspector's record-kind histogram covers the compaction journal's
   intent frame — a crashed truncation must be legible forensically. *)
let test_inspect_truncate_intent () =
  let recs, _ = sample_records () in
  let intent = Wal.Truncate_intent { old_len = 100; new_len = 40 } in
  let s = Wal_inspect.inspect (Wal.Codec.encode_all (recs @ [ intent ])) in
  Helpers.check_int "truncate_intent counted" 1 (kind_count s "truncate_intent");
  Alcotest.(check string) "clean" "clean"
    (Wal_inspect.damage_kind s.Wal_inspect.damage)

(* Partitioned-replay accounting: worker/partition gauges and spans are
   exported when recorded, and entirely absent from a serial profile —
   serial dumps must stay byte-identical to the pre-parallel format. *)
let test_profile_partitions () =
  let clock, tick = fake_clock () in
  let p = Profile.create ~clock () in
  Profile.time p Profile.Object_replay (fun () -> tick 0.5);
  Profile.note_object_replay p ~obj:"BA1" 9;
  Profile.note_object_replay p ~obj:"BA0" 4;
  Profile.note_workers p 2;
  Profile.note_partition p ~index:1 ~objects:3 ~ops:9 ~wall:0.3;
  Profile.note_partition p ~index:0 ~objects:2 ~ops:4 ~wall:0.2;
  Profile.finish p;
  Helpers.check_int "workers" 2 (Profile.workers p);
  Alcotest.(check bool) "partitions sorted by index" true
    (List.map (fun (i, o, n, _) -> (i, o, n)) (Profile.partitions p)
    = [ (0, 2, 4); (1, 3, 9) ]);
  let reg = Metrics.create () in
  Profile.export p reg;
  Alcotest.(check (option (float 1e-9))) "workers gauge" (Some 2.)
    (Metrics.gauge_value reg "tm_recovery_workers");
  Alcotest.(check (option (float 1e-9))) "partition wall gauge" (Some 0.3)
    (Metrics.gauge_value reg
       ~labels:[ ("partition", "1") ]
       "tm_recovery_partition_seconds");
  Helpers.check_int "partition ops counter" 4
    (Metrics.counter_value reg
       ~labels:[ ("partition", "0") ]
       "tm_recovery_partition_replayed_ops_total");
  (* per-partition spans ride along after the phase spans *)
  Alcotest.(check (list (pair string int)))
    "partition spans" [ ("object_replay", 13); ("object_replay.p0", 4);
                        ("object_replay.p1", 9) ]
    (List.filter_map
       (fun (n, _, items) ->
         if String.length n >= 13 && String.sub n 0 13 = "object_replay" then
           Some (n, items)
         else None)
       (Profile.spans p));
  (* gating: a serial profile exports none of this *)
  let serial = Profile.create ~clock () in
  Profile.note_object_replay serial ~obj:"BA" 1;
  Profile.finish serial;
  let sreg = Metrics.create () in
  Profile.export serial sreg;
  Alcotest.(check (option (float 1e-9))) "no workers gauge when serial" None
    (Metrics.gauge_value sreg "tm_recovery_workers");
  let json = Tm_obs.Json.to_string (Profile.to_json serial) in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Helpers.check_bool "serial json has no partition keys" false
    (contains json "partitions" || contains json "workers")

(* The report side: tm_recovery_* samples in a metrics dump surface as
   the report's recovery section. *)
let test_report_recovery_section () =
  let clock, tick = fake_clock () in
  let p = Profile.create ~clock () in
  Profile.time p Profile.Log_scan (fun () -> tick 0.5);
  Profile.note_bytes_scanned p 4096;
  Profile.note_object_replay p ~obj:"BA" 6;
  Profile.finish p;
  let reg = Metrics.create () in
  Profile.export p reg;
  let metrics_text = Metrics.to_prometheus reg in
  match Tm_obs.Report.of_sources ~metrics_text () with
  | Error e -> Alcotest.failf "report: %s" e
  | Ok rep -> (
      match rep.Tm_obs.Report.recovery with
      | None -> Alcotest.fail "recovery section missing"
      | Some r ->
          Alcotest.(check (option (float 1e-9))) "wall" (Some 0.5)
            r.Tm_obs.Report.wall_seconds;
          Alcotest.(check (float 1e-9)) "log_scan seconds" 0.5
            (List.assoc "log_scan" r.Tm_obs.Report.phase_seconds);
          Helpers.check_int "bytes count" 4096
            (List.assoc "tm_recovery_bytes_scanned_total" r.Tm_obs.Report.counts);
          Alcotest.(check (list (pair string int))) "per object"
            [ ("BA", 6) ]
            r.Tm_obs.Report.per_object)

(* ------------------------------------------------------------------ *)
(* 2PC forensics: a hand-built mixed-shard image covering all three
   evidence classes.  Transaction a prepared on shards 0 and 1 with the
   coordinator's Decision surviving on shard 0; b prepared on shards 2
   and 3 with only shard 2's phase-2 Commit surviving; c prepared on
   shard 1 with no evidence anywhere (presumed abort).  Reported byte
   offsets must be the Prepare frames' actual positions.               *)

let test_two_phase_forensics () =
  let a = Tid.of_int 7 and b = Tid.of_int 8 and c = Tid.of_int 9 in
  let frames =
    [
      (0, Wal.Begin a);
      (1, Wal.Begin a);
      (3, Wal.Begin b);
      (1, Wal.Prepare a);
      (0, Wal.Prepare a);
      (3, Wal.Prepare b);
      (0, Wal.Decision { tid = a; commit = true });
      (2, Wal.Begin b);
      (2, Wal.Prepare b);
      (1, Wal.Begin c);
      (1, Wal.Prepare c);
      (2, Wal.Commit b);
    ]
  in
  let image =
    String.concat "" (List.map (fun (s, r) -> Wal.Codec.encode ~shard:s r) frames)
  in
  (* ground-truth byte offset of each (shard, record) frame *)
  let offset_of shard record =
    let rec go off = function
      | [] -> Alcotest.fail "frame not in the image"
      | (s, r) :: rest ->
          if s = shard && r = record then off
          else go (off + String.length (Wal.Codec.encode ~shard:s r)) rest
    in
    go 0 frames
  in
  let tp = Wal_inspect.two_phase image in
  Helpers.check_int "all four shards reported" 4 (List.length tp);
  let shard s = List.nth tp s in
  List.iteri
    (fun i t -> Helpers.check_int "ascending shard ids" i t.Wal_inspect.tp_shard)
    tp;
  let counts t =
    (t.Wal_inspect.tp_prepares, t.Wal_inspect.tp_decisions,
     t.Wal_inspect.tp_completions)
  in
  Alcotest.(check (triple int int int)) "shard 0 counts" (1, 1, 0) (counts (shard 0));
  Alcotest.(check (triple int int int)) "shard 1 counts" (2, 0, 0) (counts (shard 1));
  Alcotest.(check (triple int int int)) "shard 2 counts" (1, 0, 1) (counts (shard 2));
  Alcotest.(check (triple int int int)) "shard 3 counts" (1, 0, 0) (counts (shard 3));
  let in_doubt s =
    List.map
      (fun p ->
        ( (Tid.to_int p.Wal_inspect.tpp_tid, p.Wal_inspect.tpp_offset),
          (p.Wal_inspect.tpp_commit, p.Wal_inspect.tpp_evidence) ))
      (shard s).Wal_inspect.tp_in_doubt
  in
  (* the coordinator's own vote is still locally unfinished: in doubt,
     but with the strongest evidence *)
  Alcotest.(check (list (pair (pair int int) (pair bool string))))
    "shard 0: decision evidence"
    [ ((7, offset_of 0 (Wal.Prepare a)), (true, "decision")) ]
    (in_doubt 0);
  Alcotest.(check (list (pair (pair int int) (pair bool string))))
    "shard 1: first-prepare order, cross-shard decision then presumed"
    [
      ((7, offset_of 1 (Wal.Prepare a)), (true, "decision"));
      ((9, offset_of 1 (Wal.Prepare c)), (false, "presumed"));
    ]
    (in_doubt 1);
  Alcotest.(check (list (pair (pair int int) (pair bool string))))
    "shard 2: locally completed, nothing in doubt" [] (in_doubt 2);
  Alcotest.(check (list (pair (pair int int) (pair bool string))))
    "shard 3: another shard's phase-2 commit as evidence"
    [ ((8, offset_of 3 (Wal.Prepare b)), (true, "phase2")) ]
    (in_doubt 3);
  (* a torn tail is dropped exactly as recovery drops it: cutting into
     shard 2's Commit frame erases b's evidence *)
  let cut = String.sub image 0 (offset_of 2 (Wal.Commit b) + 3) in
  let tp' = Wal_inspect.two_phase cut in
  (match (List.nth tp' 3).Wal_inspect.tp_in_doubt with
  | [ p ] ->
      Alcotest.(check string) "evidence degrades with the torn tail" "presumed"
        p.Wal_inspect.tpp_evidence;
      Helpers.check_bool "presumed abort" false p.Wal_inspect.tpp_commit
  | l -> Alcotest.failf "expected 1 in-doubt on shard 3, got %d" (List.length l));
  (* JSON export mirrors the same structure *)
  let json = Tm_obs.Json.to_string (Wal_inspect.two_phase_to_json tp) in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Helpers.check_bool (Fmt.str "json has %s" needle) true (contains json needle))
    [
      "\"shard\":0"; "\"shard\":3";
      "\"evidence\":\"decision\""; "\"evidence\":\"phase2\"";
      "\"evidence\":\"presumed\"";
      Fmt.str "\"offset\":%d" (offset_of 1 (Wal.Prepare c));
      "\"outcome\":\"commit\""; "\"outcome\":\"abort\"";
    ]

let suite =
  [
    Alcotest.test_case "inspect a clean image" `Quick test_inspect_clean;
    Alcotest.test_case "interior flip: offset and refusal" `Quick
      test_interior_flip_offset;
    Alcotest.test_case "tail flip: torn, truncated, loaded" `Quick
      test_tail_flip_is_torn;
    Alcotest.test_case "damage sweep over every frame" `Quick test_damage_sweep;
    Alcotest.test_case "per-frame version histogram" `Quick
      test_inspect_version_histogram;
    Alcotest.test_case "foreign-version frame located" `Quick
      test_inspect_foreign_version;
    Alcotest.test_case "replay digest is version-independent" `Quick
      test_replay_digest_version_stable;
    Alcotest.test_case "profiler: phases tile (fake clock)" `Quick
      test_profile_phases_tile;
    Alcotest.test_case "profiler: export and spans" `Quick
      test_profile_export_and_spans;
    Alcotest.test_case "recover under a profile, end to end" `Quick
      test_recover_with_profile;
    Alcotest.test_case "inspect a truncation-intent frame" `Quick
      test_inspect_truncate_intent;
    Alcotest.test_case "profiler: partition accounting and gating" `Quick
      test_profile_partitions;
    Alcotest.test_case "report surfaces the recovery section" `Quick
      test_report_recovery_section;
    Alcotest.test_case "2pc forensics on a mixed-shard image" `Quick
      test_two_phase_forensics;
  ]
