(* The crash-injection torture harness itself: unit tests for the
   log→history reconstruction and hand-built tortures, plus the QCheck
   property the harness exists for — random concurrent workloads with
   random mid-run fuzzy checkpoint placement survive a crash at *every*
   WAL append point with all three recovery invariants intact. *)

open Tm_core
module Wal = Tm_engine.Wal
module Crash = Tm_engine.Crash
module Recovery = Tm_engine.Recovery
module Atomic_object = Tm_engine.Atomic_object
module DD = Tm_engine.Durable_database
module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler
module BA = Tm_adt.Bank_account

let deposit_inv i = Op.invocation ~args:[ Value.int i ] "deposit"

let rebuild_ba () =
  [
    Atomic_object.create ~spec:(BA.spec_with_initial 100) ~conflict:BA.nrbc_conflict
      ~recovery:Recovery.UIP ();
  ]

(* --- history_of_records --- *)

let test_history_committed_txn () =
  let recs =
    [
      Wal.Begin Tid.a;
      Wal.Operation (Tid.a, BA.deposit 5);
      Wal.Commit Tid.a;
    ]
  in
  let h = Crash.history_of_records recs in
  Helpers.check_bool "well-formed" true (History.is_well_formed h);
  Helpers.check_bool "a committed" true (Tid.Set.mem Tid.a (History.committed h));
  Helpers.check_bool "no active txns" true (Tid.Set.is_empty (History.active h))

let test_history_loser_aborted () =
  let recs = [ Wal.Begin Tid.a; Wal.Operation (Tid.a, BA.deposit 5) ] in
  let h = Crash.history_of_records recs in
  Helpers.check_bool "well-formed" true (History.is_well_formed h);
  Helpers.check_bool "loser aborted" true (Tid.Set.mem Tid.a (History.aborted h));
  Helpers.check_bool "no active txns" true (Tid.Set.is_empty (History.active h))

let test_history_checkpoint_base () =
  (* The checkpoint's committed base appears as one synthetic committed
     transaction whose tid is fresh (above the log's high-water mark);
     its live snapshot seeds the in-flight transactions. *)
  let head =
    [
      Wal.Begin Tid.a;
      Wal.Operation (Tid.a, BA.deposit 1);
      Wal.Commit Tid.a;
      Wal.Begin Tid.b;
      Wal.Operation (Tid.b, BA.deposit 2);
    ]
  in
  let recs = head @ [ Wal.Checkpoint (Wal.fuzzy_checkpoint head) ] in
  let h = Crash.history_of_records recs in
  Helpers.check_bool "well-formed" true (History.is_well_formed h);
  Helpers.check_int "base txn + live txn" 2 (Tid.Set.cardinal (History.transactions h));
  Helpers.check_bool "b's snapshot ops present, b aborted as loser" true
    (Tid.Set.mem Tid.b (History.aborted h));
  Helpers.check_bool "base txn is not b or a" true
    (Tid.Set.exists (fun t -> not (Tid.equal t Tid.a || Tid.equal t Tid.b))
       (History.committed h))

(* --- torture on a hand-driven database --- *)

let test_torture_clean_run () =
  let report =
    Crash.run ~rebuild:rebuild_ba
      ~drive:(fun db ->
        let a = DD.begin_txn db in
        ignore (DD.invoke db a ~obj:"BA" (deposit_inv 5));
        Helpers.check_bool "a commits" true (DD.try_commit db a = Ok ());
        let b = DD.begin_txn db in
        ignore (DD.invoke db b ~obj:"BA" (deposit_inv 3));
        DD.checkpoint db;  (* fuzzy: b in flight *)
        ignore (DD.invoke db b ~obj:"BA" (deposit_inv 4));
        Helpers.check_bool "b commits" true (DD.try_commit db b = Ok ());
        let c = DD.begin_txn db in
        ignore (DD.invoke db c ~obj:"BA" (deposit_inv 9)))
      ()
  in
  Helpers.check_bool
    (Fmt.str "no violations: %a" Crash.pp_report report)
    true (Crash.ok report);
  Helpers.check_bool "every cut atomicity-checked" true
    (report.Crash.atomicity_checked = report.Crash.cuts)

let test_torture_detects_corrupt_log () =
  (* Sanity that the harness can fail: a log whose commit record arrives
     with an illegal operation sequence must be flagged. *)
  let wal = Wal.create () in
  List.iter (Wal.append wal)
    [
      Wal.Begin Tid.a;
      (* overdraws the initial balance: never executable, so replaying it
         as committed is illegal *)
      Wal.Operation (Tid.a, BA.withdraw_ok 10_000);
      Wal.Commit Tid.a;
    ];
  let report = Crash.torture ~rebuild:rebuild_ba wal in
  Helpers.check_bool "violation detected" false (Crash.ok report)

(* --- byte-granularity torture and corruption sweep --- *)

let driven_wal () =
  let wal = Wal.create () in
  let db = DD.create ~wal (rebuild_ba ()) in
  let a = DD.begin_txn db in
  ignore (DD.invoke db a ~obj:"BA" (deposit_inv 5));
  Helpers.check_bool "a commits" true (DD.try_commit db a = Ok ());
  let b = DD.begin_txn db in
  ignore (DD.invoke db b ~obj:"BA" (deposit_inv 3));
  DD.checkpoint db;
  ignore (DD.invoke db b ~obj:"BA" (deposit_inv 4));
  Helpers.check_bool "b commits" true (DD.try_commit db b = Ok ());
  let c = DD.begin_txn db in
  ignore (DD.invoke db c ~obj:"BA" (deposit_inv 9));
  wal

let test_torture_bytes_clean () =
  let wal = driven_wal () in
  let report = Crash.torture_bytes ~rebuild:rebuild_ba wal in
  Helpers.check_bool
    (Fmt.str "no violations: %a" Crash.pp_report report)
    true (Crash.ok report);
  (* Byte cuts strictly outnumber record cuts: most land inside frames. *)
  Helpers.check_bool "more cuts than records" true
    (report.Crash.cuts > Wal.length wal + 1)

let test_corruption_sweep_contained () =
  let wal = driven_wal () in
  let sweep = Crash.corruption_sweep wal in
  Helpers.check_bool
    (Fmt.str "nothing silent: %a" Crash.pp_sweep_report sweep)
    true (Crash.sweep_ok sweep);
  Helpers.check_bool "interior corruption was detected" true
    (sweep.Crash.interior_detected > 0);
  Helpers.check_bool "tail flips were contained" true (sweep.Crash.tail_losses > 0)

(* --- truncation torture: crash-atomic compaction byte sweep --- *)

let test_torture_truncation_clean () =
  let wal = driven_wal () in
  let report = Crash.torture_truncation ~rebuild:rebuild_ba wal in
  Helpers.check_bool
    (Fmt.str "no violations: %a" Crash.pp_report report)
    true (Crash.ok report);
  Helpers.check_bool "the sweep exercised crash states" true
    (report.Crash.cuts > 0);
  (* and through the parallel replay path *)
  let par = Crash.torture_truncation ~workers:4 ~rebuild:rebuild_ba wal in
  Helpers.check_bool
    (Fmt.str "no violations with 4 workers: %a" Crash.pp_report par)
    true (Crash.ok par)

let test_torture_truncation_no_checkpoint () =
  (* Nothing to compact: the sweep is vacuous, not wrong. *)
  let wal = Wal.create () in
  List.iter (Wal.append wal)
    [ Wal.Begin Tid.a; Wal.Operation (Tid.a, BA.deposit 5); Wal.Commit Tid.a ];
  let report = Crash.torture_truncation ~rebuild:rebuild_ba wal in
  Helpers.check_int "no crash states" 0 report.Crash.cuts;
  Helpers.check_bool "clean" true (Crash.ok report)

(* --- parallel replay: equivalence with serial recovery --- *)

let committed_by_object db =
  List.map
    (fun o -> (Atomic_object.name o, Atomic_object.committed_ops o))
    (Tm_engine.Database.objects (DD.database db))

(* Same seed, same worker count: the partition layout and its profile
   accounting are deterministic — the object-to-partition map is a
   stable hash, not an artifact of scheduling. *)
let test_parallel_replay_deterministic () =
  let scenario = Experiment.transfer () in
  let setup = Experiment.setup Recovery.UIP Experiment.Semantic in
  let cfg = Scheduler.config ~concurrency:3 ~total_txns:6 ~seed:23 () in
  let _row, wal = Experiment.run_durable ~checkpoint_every:2 scenario setup cfg in
  let rebuild () = scenario.Experiment.build setup in
  let observe () =
    let profile = Tm_obs.Recovery_profile.create () in
    match DD.recover ~profile ~workers:4 ~wal ~rebuild () with
    | Error _ -> Alcotest.fail "recover failed"
    | Ok _ ->
        ( Tm_obs.Recovery_profile.workers profile,
          List.map
            (fun (i, objs, ops, _wall) -> (i, objs, ops))
            (Tm_obs.Recovery_profile.partitions profile),
          List.map
            (fun (phase, _wall, items) -> (phase, items))
            (Tm_obs.Recovery_profile.spans profile) )
  in
  let w1, parts1, spans1 = observe () in
  let w2, parts2, spans2 = observe () in
  Helpers.check_int "workers recorded" 4 w1;
  Helpers.check_int "partitions cover the pool" 4 (List.length parts1);
  Helpers.check_bool "partition tiling identical across runs" true
    (parts1 = parts2 && w1 = w2);
  Alcotest.(check (list (pair string int)))
    "span structure identical across runs" spans1 spans2

(* --- batch-prefix torture of a group-committed run --- *)

let test_torture_batched_group_commit () =
  (* Drive a workload with the durability barrier batched every 3
     commits, then prove every byte cut recovers a prefix of the commit
     order and never loses a commit acknowledged at a flush frontier. *)
  let scenario = Experiment.transfer () in
  let setup = Experiment.setup Recovery.UIP Experiment.Semantic in
  let dw = Tm_engine.Disk_wal.create (Tm_engine.Storage.memory ()) in
  let cfg = Scheduler.config ~concurrency:3 ~total_txns:6 ~seed:5 () in
  let _row, wal =
    Experiment.run_durable ~wal:(Tm_engine.Disk_wal.wal dw) ~checkpoint_every:2
      ~group_commit:3 scenario setup cfg
  in
  let rebuild () = scenario.Experiment.build setup in
  let report = Crash.torture_bytes ~rebuild wal in
  Helpers.check_bool
    (Fmt.str "byte cuts clean on a batched run: %a" Crash.pp_report report)
    true (Crash.ok report);
  let batch = Crash.torture_batched ~group_every:3 wal in
  Helpers.check_bool
    (Fmt.str "batch-prefix clean: %a" Crash.pp_batch_report batch)
    true (Crash.batch_ok batch);
  Helpers.check_bool "cuts cover the encoded log" true (batch.Crash.byte_cuts > 0);
  Helpers.check_bool "the run performed durability barriers" true
    (batch.Crash.frontiers >= 1);
  Helpers.check_bool "commits were acknowledged" true (batch.Crash.acked_max > 0)

(* --- the property --- *)

(* Scenario pool for the property: single- and multi-object, plus the
   mixed-recovery build (UIP and DU objects in one system). *)
let prop_scenarios =
  [|
    Experiment.bank_hotspot;
    Experiment.inventory;
    Experiment.transfer ();
    Experiment.transfer_mixed_recovery ();
  |]

let prop_setups =
  [|
    Experiment.setup Recovery.UIP Experiment.Semantic;
    Experiment.setup Recovery.DU Experiment.Semantic;
    Experiment.setup ~occ:true Recovery.DU Experiment.Semantic;
  |]

let prop_crash_invariants =
  Helpers.qcheck ~count:60 "crash at every append point preserves recovery invariants"
    QCheck2.Gen.(
      tup4 (int_range 0 10_000) (int_bound 3) (int_bound (Array.length prop_scenarios - 1))
        (int_bound (Array.length prop_setups - 1)))
    (fun (seed, checkpoint_every, si, pi) ->
      let scenario = prop_scenarios.(si) and setup = prop_setups.(pi) in
      let cfg = Scheduler.config ~concurrency:3 ~total_txns:5 ~seed () in
      let _row, wal = Experiment.run_durable ~checkpoint_every scenario setup cfg in
      let rebuild () = scenario.Experiment.build setup in
      let report = Crash.torture ~rebuild wal in
      if Crash.ok report then true
      else
        QCheck2.Test.fail_reportf "%s/%s seed %d cp %d: %a"
          scenario.Experiment.name (Experiment.label setup) seed checkpoint_every
          Crash.pp_report report)

(* For every worker count, recovery of any crash prefix must be
   indistinguishable from serial recovery: same committed operations at
   every object, same loser set, same restart tid.  Driven over the
   multi-object scenario pool with random checkpoint placement, so
   partitions, checkpoint seeding and losers all participate. *)
let prop_parallel_replay_equivalent =
  Helpers.qcheck ~count:40
    "parallel replay = serial replay at any worker count"
    QCheck2.Gen.(
      tup4 (int_range 0 10_000) (int_bound 3)
        (int_bound (Array.length prop_scenarios - 1))
        (int_bound (Array.length prop_setups - 1)))
    (fun (seed, checkpoint_every, si, pi) ->
      let scenario = prop_scenarios.(si) and setup = prop_setups.(pi) in
      let cfg = Scheduler.config ~concurrency:3 ~total_txns:5 ~seed () in
      let _row, wal = Experiment.run_durable ~checkpoint_every scenario setup cfg in
      let rebuild () = scenario.Experiment.build setup in
      (* crash at a seed-derived record cut so losers are common *)
      let cut = seed mod (Wal.length wal + 1) in
      let log = Wal.prefix wal cut in
      let recover_with workers =
        match DD.recover ~workers ~wal:log ~rebuild () with
        | Ok (db, losers) ->
            (committed_by_object db, losers, DD.begin_txn db)
        | Error e ->
            QCheck2.Test.fail_reportf "recover (workers %d) failed: %a" workers
              Recovery.pp_error e
      in
      let sc, sl, st = recover_with 1 in
      List.for_all
        (fun w ->
          let pc, pl, pt = recover_with w in
          let same_committed =
            List.equal
              (fun (n1, o1) (n2, o2) ->
                String.equal n1 n2 && List.equal Op.equal o1 o2)
              sc pc
          in
          if same_committed && Tid.Set.equal sl pl && Tid.equal st pt then true
          else
            QCheck2.Test.fail_reportf
              "%s/%s seed %d cut %d: %d-worker recovery diverged from serial"
              scenario.Experiment.name (Experiment.label setup) seed cut w)
        [ 2; 4; 8 ])

let suite =
  [
    Alcotest.test_case "history: committed txn" `Quick test_history_committed_txn;
    Alcotest.test_case "history: loser aborted" `Quick test_history_loser_aborted;
    Alcotest.test_case "history: checkpoint base" `Quick test_history_checkpoint_base;
    Alcotest.test_case "torture: clean run" `Quick test_torture_clean_run;
    Alcotest.test_case "torture: detects corrupt log" `Quick
      test_torture_detects_corrupt_log;
    Alcotest.test_case "torture: byte-granularity cuts" `Quick
      test_torture_bytes_clean;
    Alcotest.test_case "corruption sweep contained" `Quick
      test_corruption_sweep_contained;
    Alcotest.test_case "truncation torture: clean sweep" `Quick
      test_torture_truncation_clean;
    Alcotest.test_case "truncation torture: vacuous without checkpoint" `Quick
      test_torture_truncation_no_checkpoint;
    Alcotest.test_case "parallel replay deterministic" `Quick
      test_parallel_replay_deterministic;
    Alcotest.test_case "batch-prefix torture of group-committed run" `Quick
      test_torture_batched_group_commit;
    prop_crash_invariants;
    prop_parallel_replay_equivalent;
  ]
