(* Golden pinning of the on-disk WAL format.

   Two layers of freeze:

   - Frame goldens: test/golden/v<N>_<kind>.bin holds the exact frame
     bytes of one fixture record per record kind, per format version.
     Encoding must reproduce them byte for byte, and decoding them must
     yield the fixture record — any codec change that moves the wire
     format fails here until `make golden` regenerates the files (and
     the diff shows exactly which kinds/versions moved).

   - Harvested logs: test/golden/logs/*.wal are real v1 log images
     written by crashtest --keep-log --keep-log-version 1 (one with a
     fuzzy checkpoint, one with a torn tail), and logs/DIGESTS records
     the replay digest each must recover to.  The current binary must
     keep replaying them to those digests — the migration contract.

   A missing golden file is written to the build sandbox and the test
   fails pointing at `make golden`, so bootstrapping a new record kind
   is one command, not hand-hexing. *)

module Wal = Tm_engine.Wal
module Codec = Tm_engine.Wal.Codec
module Wal_format = Tm_engine.Wal_format
module Wal_inspect = Tm_engine.Wal_inspect

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path bytes =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc bytes)

let hex s =
  String.concat "" (List.map (fun c -> Fmt.str "%02x" (Char.code c))
                      (List.init (String.length s) (String.get s)))

let test_golden_frames version () =
  List.iter
    (fun (name, record) ->
      if not (Wal_format.fixture_supported ~version record) then begin
        (* A v2-only kind must refuse the old frame version outright —
           the absence of a v1 golden is contractual, not an oversight. *)
        match Codec.encode ~version record with
        | exception Invalid_argument _ -> ()
        | _ ->
            Alcotest.failf "%s encoded under v%d but is a v%d-only record kind"
              name version Codec.v2
      end
      else
      let file = Wal_format.golden_file ~version name in
      let path = Filename.concat "golden" file in
      let actual = Codec.encode ~version record in
      if not (Sys.file_exists path) then begin
        (try write_file path actual with Sys_error _ -> ());
        Alcotest.failf
          "golden file %s missing — run `make golden` and commit test/golden/"
          path
      end;
      let expected = read_file path in
      if not (String.equal expected actual) then
        Alcotest.failf
          "%s drifted:@.  golden %s@.  actual %s@.If the format change is \
           intentional, run `make golden` and update docs/WAL_FORMAT.md via \
           `make walformatdoc`."
          file (hex expected) (hex actual);
      (* and the frozen bytes decode back to the fixture record *)
      match Codec.decode_all expected with
      | Error c -> Alcotest.failf "%s does not decode: %a" file Codec.pp_corruption c
      | Ok d -> (
          match d.Codec.records with
          | [ r ] ->
              Helpers.check_bool (file ^ " decodes to the fixture") true
                (Wal.equal_record record r)
          | rs -> Alcotest.failf "%s decoded to %d records" file (List.length rs)))
    Wal_format.fixtures

(* Every record kind has a fixture — a new constructor cannot ship
   without entering the golden set. *)
let test_fixture_coverage () =
  let covered =
    List.sort_uniq String.compare
      (List.map (fun (_, r) -> Wal.record_kind r) Wal_format.fixtures)
  in
  Alcotest.(check (list string))
    "every record kind pinned"
    [
      "abort";
      "begin";
      "checkpoint";
      "commit";
      "decision";
      "operation";
      "prepare";
      "truncate_intent";
    ]
    covered

let digests_path = Filename.concat (Filename.concat "golden" "logs") "DIGESTS"

let read_digests () =
  if not (Sys.file_exists digests_path) then
    Alcotest.failf
      "%s missing — harvest v1 logs with `dune exec bin/crashtest.exe -- \
       --keep-log FILE --keep-log-version 1` and record their `walinspect \
       --digest` output"
      digests_path;
  let lines =
    String.split_on_char '\n' (read_file digests_path)
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" || l.[0] = '#' then None
           else
             match String.index_opt l ' ' with
             | Some i ->
                 Some
                   ( String.sub l 0 i,
                     String.trim (String.sub l (i + 1) (String.length l - i - 1))
                   )
             | None -> Alcotest.failf "malformed DIGESTS line: %S" l)
  in
  if lines = [] then Alcotest.fail "DIGESTS is empty";
  lines

(* The checked-in v1 logs replay, under this binary, to the recorded
   recovered-state digests — bit-for-bit read compatibility, including
   across a torn tail. *)
let test_harvested_v1_logs () =
  List.iter
    (fun (file, expected) ->
      let path = Filename.concat (Filename.concat "golden" "logs") file in
      if not (Sys.file_exists path) then
        Alcotest.failf "%s named in DIGESTS but missing" path;
      let bytes = read_file path in
      (* these are v1 images: every readable frame must be v1 *)
      let s = Wal_inspect.inspect bytes in
      List.iter
        (fun (v, _) ->
          Helpers.check_int (file ^ " frames are v1") Codec.v1 v)
        s.Wal_inspect.by_version;
      match Wal_inspect.replay_digest bytes with
      | Error c -> Alcotest.failf "%s refused: %a" file Codec.pp_corruption c
      | Ok actual ->
          Alcotest.(check string)
            (file ^ " replays to its recorded digest")
            expected actual)
    (read_digests ())

let suite =
  List.map
    (fun version ->
      Alcotest.test_case
        (Fmt.str "v%d frame goldens" version)
        `Quick
        (test_golden_frames version))
    Wal_format.versions
  @ [
      Alcotest.test_case "every record kind has a golden fixture" `Quick
        test_fixture_coverage;
      Alcotest.test_case "harvested v1 logs replay to recorded digests" `Quick
        test_harvested_v1_logs;
    ]
