(* Observability: the metrics registry (bucketing, quantiles, labeled
   merging, Prometheus export), transaction tracing, and the round trip
   recorded trace -> history -> dynamic-atomicity checker. *)

open Tm_core
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace
module Atomic_object = Tm_engine.Atomic_object
module Database = Tm_engine.Database
module Concurrent = Tm_engine.Concurrent
module Recovery = Tm_engine.Recovery
module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler
module BA = Tm_adt.Bank_account

let check_float = Alcotest.(check (float 1e-9))
let check_float_opt = Alcotest.(check (option (float 1e-9)))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Histogram bucketing and quantile estimation.                        *)

let test_histogram_bucketing () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 10.; 20.; 30. |] "h" in
  List.iter (Metrics.Histogram.observe h) [ 5.; 15.; 25. ];
  Helpers.check_int "count" 3 (Metrics.Histogram.count h);
  check_float "sum" 45. (Metrics.Histogram.sum h);
  (* rank 1.5 falls in (10,20] with one observation below: interpolates
     to the middle of the bucket *)
  check_float_opt "p50" (Some 15.) (Metrics.Histogram.quantile h 0.5);
  check_float_opt "p100" (Some 30.) (Metrics.Histogram.quantile h 1.0);
  check_float_opt "p0" (Some 0.) (Metrics.Histogram.quantile h 0.)

let test_histogram_overflow_clamp () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 10.; 20.; 30. |] "h" in
  Metrics.Histogram.observe h 1000.;
  (* everything in the overflow bucket: clamped to the largest bound *)
  check_float_opt "clamped" (Some 30.) (Metrics.Histogram.quantile h 0.5)

let test_histogram_empty_and_bad_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 1.; 2. |] "h" in
  check_float_opt "empty" None (Metrics.Histogram.quantile h 0.5);
  Alcotest.check_raises "non-increasing" (Invalid_argument
    "Metrics.histogram: bucket bounds must be strictly increasing") (fun () ->
      ignore (Metrics.histogram reg ~buckets:[| 2.; 2. |] "h2"))

(* Quantile estimator edges: single sample, extreme q, all-equal
   samples, and monotonicity in q. *)

let test_quantile_single_sample () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 10.; 20. |] "h" in
  Metrics.Histogram.observe h 5.;
  let q v =
    match Metrics.Histogram.quantile h v with
    | Some x -> x
    | None -> Alcotest.failf "quantile %g: None on non-empty histogram" v
  in
  check_float "q0 is the bucket's lower edge" 0. (q 0.);
  check_float "q1 is the bucket's upper edge" 10. (q 1.);
  Helpers.check_bool "q0.5 within the sample's bucket" true
    (q 0.5 > 0. && q 0.5 <= 10.)

let test_quantile_all_equal () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 5.; 10.; 20. |] "h" in
  for _ = 1 to 50 do
    Metrics.Histogram.observe h 7.
  done;
  (* every estimate interpolates inside the one occupied bucket *)
  List.iter
    (fun qv ->
      match Metrics.Histogram.quantile h qv with
      | Some x ->
          Helpers.check_bool (Fmt.str "q%g inside (5,10]" qv) true
            (x > 5. && x <= 10.)
      | None -> Alcotest.failf "q%g: None" qv)
    [ 0.01; 0.25; 0.5; 0.9; 0.99; 1.0 ]

let test_quantile_monotone_in_q () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:Metrics.default_buckets "h" in
  List.iter
    (fun v -> Metrics.Histogram.observe h v)
    [ 0.5; 3.; 3.; 17.; 40.; 120.; 800.; 4000.; 9000. ];
  let last = ref neg_infinity in
  List.iter
    (fun qv ->
      match Metrics.Histogram.quantile h qv with
      | Some x ->
          Helpers.check_bool (Fmt.str "q%g >= previous" qv) true (x >= !last);
          last := x
      | None -> Alcotest.failf "q%g: None" qv)
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]

(* ------------------------------------------------------------------ *)
(* Registry semantics: idempotent handles, labels, merging.            *)

let test_counter_idempotent_and_labels () =
  let reg = Metrics.create () in
  let c1 = Metrics.counter reg ~labels:[ ("a", "1"); ("b", "2") ] "c" in
  (* same series under reordered labels *)
  let c2 = Metrics.counter reg ~labels:[ ("b", "2"); ("a", "1") ] "c" in
  Metrics.Counter.incr c1;
  Metrics.Counter.incr ~by:2 c2;
  Helpers.check_int "one series" 3
    (Metrics.counter_value reg ~labels:[ ("a", "1"); ("b", "2") ] "c");
  Helpers.check_int "absent reads 0" 0 (Metrics.counter_value reg "absent");
  Metrics.Counter.incr ~by:10 (Metrics.counter reg ~labels:[ ("a", "other") ] "c");
  Helpers.check_int "family total" 13 (Metrics.counter_total reg "c")

let test_type_clash () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "x");
  Alcotest.check_raises "counter as gauge" (Invalid_argument
    "Metrics: x already registered as a counter, requested as a gauge") (fun () ->
      ignore (Metrics.gauge reg "x"))

let test_merge () =
  let src = Metrics.create () in
  Metrics.Counter.incr ~by:3 (Metrics.counter src ~labels:[ ("k", "v") ] "c");
  Metrics.Gauge.set (Metrics.gauge src "g") 7.;
  let hs = Metrics.histogram src ~buckets:[| 1.; 2. |] "h" in
  Metrics.Histogram.observe hs 1.5;
  let dst = Metrics.create () in
  Metrics.Counter.incr ~by:2
    (Metrics.counter dst ~labels:[ ("k", "v"); ("run", "a") ] "c");
  Metrics.merge ~extra_labels:[ ("run", "a") ] dst src;
  Helpers.check_int "counters accumulate" 5
    (Metrics.counter_value dst ~labels:[ ("k", "v"); ("run", "a") ] "c");
  check_float_opt "gauge copied" (Some 7.)
    (Metrics.gauge_value dst ~labels:[ ("run", "a") ] "g");
  let hd = Metrics.histogram dst ~labels:[ ("run", "a") ] ~buckets:[| 1.; 2. |] "h" in
  Helpers.check_int "histogram accumulates" 1 (Metrics.Histogram.count hd);
  (* merging again doubles the counter *)
  Metrics.merge ~extra_labels:[ ("run", "a") ] dst src;
  Helpers.check_int "second merge" 8
    (Metrics.counter_value dst ~labels:[ ("k", "v"); ("run", "a") ] "c")

let test_merge_bucket_mismatch () =
  let src = Metrics.create () in
  ignore (Metrics.histogram src ~buckets:[| 1.; 2. |] "h");
  let dst = Metrics.create () in
  ignore (Metrics.histogram dst ~buckets:[| 5.; 6. |] "h");
  Alcotest.check_raises "bucket mismatch" (Invalid_argument
    "Metrics: histogram h re-registered with different buckets") (fun () ->
      Metrics.merge dst src)

let test_prometheus_export () =
  let reg = Metrics.create () in
  Metrics.Counter.incr ~by:4 (Metrics.counter reg ~labels:[ ("obj", "BA") ] "tm_c");
  let h = Metrics.histogram reg ~buckets:[| 1.; 2. |] "tm_h" in
  Metrics.Histogram.observe h 1.5;
  let out = Metrics.to_prometheus reg in
  List.iter
    (fun needle -> Helpers.check_bool needle true (contains out needle))
    [
      "# TYPE tm_c counter";
      "tm_c{obj=\"BA\"} 4";
      "# TYPE tm_h histogram";
      "tm_h_bucket{le=\"1\"} 0";
      "tm_h_bucket{le=\"2\"} 1";
      "tm_h_bucket{le=\"+Inf\"} 1";
      "tm_h_sum 1.5";
      "tm_h_count 1";
    ]

(* ------------------------------------------------------------------ *)
(* Engine wiring: database counters and trace spans.                   *)

let deposit_inv i = Op.invocation ~args:[ Value.int i ] "deposit"

let make_db () =
  Database.create
    [
      Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
        ~recovery:Recovery.UIP ();
    ]

let test_database_counters_registry_backed () =
  let db = make_db () in
  let t = Database.begin_txn db in
  (match Database.invoke db t ~obj:"BA" (deposit_inv 5) with
  | Atomic_object.Executed _ -> ()
  | _ -> Alcotest.fail "deposit should execute");
  Database.commit db t;
  let u = Database.begin_txn db in
  ignore (Database.invoke db u ~obj:"BA" (deposit_inv 1));
  Database.abort db u;
  let reg = Database.metrics db in
  Helpers.check_int "committed_count" 1 (Database.committed_count db);
  Helpers.check_int "backing counter" 1
    (Metrics.counter_value reg "tm_txn_committed_total");
  Helpers.check_int "aborted_count" 1 (Database.aborted_count db);
  Helpers.check_int "aborted counter" 1
    (Metrics.counter_value reg "tm_txn_aborted_total");
  Helpers.check_int "begins" 2 (Metrics.counter_value reg "tm_txn_begins_total");
  Helpers.check_int "executed invocations" 2
    (Metrics.counter_value reg ~labels:[ ("outcome", "executed") ]
       "tm_invocations_total")

let test_trace_spans () =
  let db = make_db () in
  let tr = Trace.create () in
  Database.set_trace db tr;
  let t = Database.begin_txn db in
  ignore (Database.invoke db t ~obj:"BA" (deposit_inv 5));
  Database.commit db t;
  let kinds = List.map (fun e -> Trace.kind_name e.Trace.kind) (Trace.events tr) in
  Alcotest.(check (list string)) "span sequence"
    [ "begin"; "invoke"; "executed"; "lock_release"; "commit" ]
    kinds;
  (* timestamps are the monotonic emission order *)
  Alcotest.(check (list int)) "timestamps" [ 0; 1; 2; 3; 4 ]
    (List.map (fun e -> e.Trace.ts) (Trace.events tr));
  let json = Trace.to_jsonl ~extra:[ ("setup", "UIP+NRBC") ] tr in
  List.iter
    (fun needle -> Helpers.check_bool needle true (contains json needle))
    [ "\"event\":\"begin\""; "\"event\":\"executed\""; "\"setup\":\"UIP+NRBC\"" ]

let test_concurrent_accessors () =
  let db =
    Concurrent.create
      [
        Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
          ~recovery:Recovery.UIP ();
      ]
  in
  (match
     Concurrent.with_txn db (fun h ->
         Concurrent.invoke h ~obj:"BA" (deposit_inv 5))
   with
  | Ok _ -> ()
  | Error (`Gave_up _) -> Alcotest.fail "unexpected abort");
  Helpers.check_int "committed" 1 (Concurrent.committed_count db);
  Helpers.check_int "no victims" 0 (Concurrent.deadlock_victim_count db);
  Helpers.check_int "no retries" 0 (Concurrent.retry_count db)

let test_scheduler_row_counters () =
  let cfg = Scheduler.config ~concurrency:8 ~total_txns:60 ~seed:11 () in
  let row =
    Experiment.run Experiment.bank_hotspot
      (Experiment.setup Recovery.UIP Experiment.Semantic)
      cfg
  in
  Helpers.check_bool "consistent" true row.Experiment.consistent;
  Helpers.check_int "victims counter mirrors deadlock aborts"
    row.Experiment.stats.Scheduler.deadlock_aborts row.Experiment.deadlock_victims;
  Helpers.check_int "rounds counter" row.Experiment.stats.Scheduler.rounds
    (Metrics.counter_value row.Experiment.metrics "tm_sched_rounds_total")

(* ------------------------------------------------------------------ *)
(* Self-describing artifact headers: round trip, family validation.    *)

module Artifact = Tm_obs.Artifact

let sample_trace () =
  let db = make_db () in
  let tr = Trace.create () in
  Database.set_trace db tr;
  let t = Database.begin_txn db in
  ignore (Database.invoke db t ~obj:"BA" (deposit_inv 5));
  Database.commit db t;
  tr

let test_artifact_roundtrip () =
  let meta =
    Artifact.make ~schema:Artifact.trace_schema ~binary:"test.exe" ~seed:42
      ~config:[ ("txns", "7") ] ()
  in
  (* JSONL side *)
  (match Artifact.of_jsonl (Artifact.header_line meta ^ "{\"ts\":0}\n") with
  | Ok (Some m) ->
      Alcotest.(check string) "schema" Artifact.trace_schema m.Artifact.schema;
      Alcotest.(check string) "binary" "test.exe" m.Artifact.binary;
      Alcotest.(check (option int)) "seed" (Some 42) m.Artifact.seed;
      Alcotest.(check (list (pair string string))) "config"
        [ ("txns", "7") ] m.Artifact.config
  | Ok None -> Alcotest.fail "header not found"
  | Error e -> Alcotest.failf "of_jsonl: %s" e);
  (* Prometheus side *)
  let prom = Artifact.prom_header meta ^ "# TYPE tm_c counter\ntm_c 1\n" in
  match Artifact.of_prom prom with
  | Ok (Some m) -> Alcotest.(check (option int)) "prom seed" (Some 42) m.Artifact.seed
  | Ok None -> Alcotest.fail "prom header not found"
  | Error e -> Alcotest.failf "of_prom: %s" e

let test_trace_parse_skips_and_validates_header () =
  let tr = sample_trace () in
  let dump = Trace.to_jsonl tr in
  let n = Trace.length tr in
  let meta = Artifact.make ~schema:Artifact.trace_schema ~seed:1 () in
  (* headered dump parses to the same events as a headerless one *)
  (match Trace.parse_jsonl (Artifact.header_line meta ^ dump) with
  | Ok events -> Helpers.check_int "header skipped" n (List.length events)
  | Error e -> Alcotest.failf "headered parse: %s" e);
  (* an unknown version within the trace family is tolerated *)
  (match
     Trace.parse_jsonl
       (Artifact.header_line (Artifact.make ~schema:"tm-trace/99" ()) ^ dump)
   with
  | Ok events -> Helpers.check_int "newer version tolerated" n (List.length events)
  | Error e -> Alcotest.failf "versioned parse: %s" e);
  (* a metrics-family header on a trace dump fails loudly *)
  match
    Trace.parse_jsonl
      (Artifact.header_line (Artifact.make ~schema:Artifact.metrics_schema ()) ^ dump)
  with
  | Ok _ -> Alcotest.fail "metrics header accepted by trace parser"
  | Error e -> Helpers.check_bool "error names the family" true (contains e "tm-metrics")

let test_report_validates_metrics_header () =
  let reg = Metrics.create () in
  Metrics.Counter.incr (Metrics.counter reg "tm_txn_begins_total");
  let body = Metrics.to_prometheus reg in
  let good =
    Artifact.prom_header (Artifact.make ~schema:Artifact.metrics_schema ()) ^ body
  in
  (match Tm_obs.Report.of_sources ~metrics_text:good () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "headered metrics rejected: %s" e);
  let bad =
    Artifact.prom_header (Artifact.make ~schema:Artifact.trace_schema ()) ^ body
  in
  match Tm_obs.Report.of_sources ~metrics_text:bad () with
  | Ok _ -> Alcotest.fail "trace header accepted on metrics dump"
  | Error e -> Helpers.check_bool "error names the family" true (contains e "tm-trace")

(* ------------------------------------------------------------------ *)
(* The metrics catalog: live registries must match it.                 *)

module Catalog = Tm_obs.Catalog

let test_catalog_covers_live_registries () =
  (* a scheduler run exercises txn / lock / object / scheduler families *)
  let cfg = Scheduler.config ~concurrency:8 ~total_txns:80 ~seed:3 () in
  let row =
    Experiment.run Experiment.bank_hotspot
      (Experiment.setup Recovery.UIP Experiment.Semantic)
      cfg
  in
  (match Catalog.check row.Experiment.metrics with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "scheduler registry:@.%s" (String.concat "\n" ps));
  (* a durable run + profiled restart exercises wal / storage / recovery
     / profiler families *)
  let store = Tm_engine.Storage.memory () in
  let dw = Tm_engine.Disk_wal.create store in
  let wal = Tm_engine.Disk_wal.wal dw in
  let rebuild () =
    [
      Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
        ~recovery:Recovery.UIP ();
    ]
  in
  let module DD = Tm_engine.Durable_database in
  let db = DD.create ~wal (rebuild ()) in
  let a = DD.begin_txn db in
  ignore (DD.invoke db a ~obj:"BA" (deposit_inv 5));
  Helpers.check_bool "commit" true (DD.try_commit db a = Ok ());
  DD.checkpoint db;
  (match Catalog.check (Database.metrics (DD.database db)) with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "durable registry:@.%s" (String.concat "\n" ps));
  let profile = Tm_obs.Recovery_profile.create () in
  match
    Tm_engine.Disk_wal.load ~profile (Tm_engine.Storage.of_string
      (Tm_engine.Storage.read_all store))
  with
  | Error _ -> Alcotest.fail "load failed"
  | Ok loaded -> (
      match
        DD.recover ~profile ~wal:(Tm_engine.Disk_wal.wal loaded) ~rebuild ()
      with
      | Error _ -> Alcotest.fail "recover failed"
      | Ok (db', _) -> (
          match Catalog.check (Database.metrics (DD.database db')) with
          | Ok () -> ()
          | Error ps ->
              Alcotest.failf "recovered registry:@.%s" (String.concat "\n" ps)))

let test_catalog_rejects_strays () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "tm_not_in_catalog_total");
  (* catalogued name registered with the wrong kind *)
  ignore (Metrics.gauge reg "tm_txn_begins_total");
  (* catalogued name missing its declared label key *)
  ignore (Metrics.counter reg ~labels:[ ("other", "x") ] "tm_lock_conflicts_total");
  match Catalog.check reg with
  | Ok () -> Alcotest.fail "stray metrics accepted"
  | Error ps ->
      (* one for the unknown name, one for the kind clash, one per
         missing label key of tm_lock_conflicts_total *)
      Helpers.check_int "five violations" 5 (List.length ps);
      Helpers.check_bool "unknown name reported" true
        (List.exists (fun p -> contains p "tm_not_in_catalog_total") ps);
      Helpers.check_bool "kind mismatch reported" true
        (List.exists (fun p -> contains p "tm_txn_begins_total") ps);
      Helpers.check_bool "label mismatch reported" true
        (List.exists (fun p -> contains p "tm_lock_conflicts_total") ps)

let test_catalog_markdown_mentions_everything () =
  let md = Catalog.to_markdown () in
  List.iter
    (fun (e : Catalog.entry) ->
      Helpers.check_bool e.Catalog.name true (contains md e.Catalog.name))
    Catalog.all

(* ------------------------------------------------------------------ *)
(* Bench baselines: JSON round trip and the comparator.                *)

module Bench = Tm_obs.Bench_baseline

let mk_series name value higher =
  { Bench.name; value; units = "x/s"; higher_is_better = higher }

let test_bench_roundtrip () =
  let b =
    Bench.make ~context:[ ("quick", "true") ] ~rev:"abc1234"
      [ mk_series "a.rate" 100. true; mk_series "a.secs" 0.5 false ]
  in
  match Bench.of_string (Bench.to_string b) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok b' ->
      Alcotest.(check string) "rev" "abc1234" b'.Bench.rev;
      Alcotest.(check (list (pair string string))) "context"
        [ ("quick", "true") ] b'.Bench.context;
      Helpers.check_int "series" 2 (List.length b'.Bench.series);
      (match Bench.find b' "a.secs" with
      | Some s ->
          check_float "value" 0.5 s.Bench.value;
          Helpers.check_bool "direction" false s.Bench.higher_is_better
      | None -> Alcotest.fail "a.secs lost");
      (* non-bench artifacts are rejected loudly *)
      match Bench.of_string "{\"schema\":\"tm-trace/1\",\"series\":[]}" with
      | Ok _ -> Alcotest.fail "trace schema accepted as bench"
      | Error e -> Helpers.check_bool "names the schema" true (contains e "tm-trace")

let test_bench_diff_verdicts () =
  let baseline =
    Bench.make ~rev:"base"
      [
        mk_series "up.ok" 100. true;
        mk_series "up.bad" 100. true;
        mk_series "down.bad" 1.0 false;
        mk_series "zero" 0. true;
        mk_series "gone" 5. true;
      ]
  in
  let current =
    Bench.make ~rev:"cur"
      [
        mk_series "up.ok" 80. true;
        (* -20%: inside tolerance *)
        mk_series "up.bad" 60. true;
        (* -40%: regression *)
        mk_series "down.bad" 1.4 false;
        (* +40% where lower is better: regression *)
        mk_series "zero" 3. true;
        (* zero baseline: never a regression *)
        mk_series "fresh" 1. true;
        (* new series: informational *)
      ]
  in
  let verdicts = Bench.diff ~tolerance_pct:25. ~baseline current in
  let verdict name =
    match List.find_opt (fun v -> v.Bench.series_name = name) verdicts with
    | Some v -> v
    | None -> Alcotest.failf "no verdict for %s" name
  in
  Helpers.check_bool "within tolerance" false (verdict "up.ok").Bench.regression;
  Helpers.check_bool "drop beyond tolerance" true (verdict "up.bad").Bench.regression;
  Helpers.check_bool "rise against direction" true (verdict "down.bad").Bench.regression;
  Helpers.check_bool "zero baseline tolerated" false (verdict "zero").Bench.regression;
  Helpers.check_bool "missing series regresses" true (verdict "gone").Bench.regression;
  Helpers.check_bool "new series informational" false (verdict "fresh").Bench.regression;
  Helpers.check_int "regression count" 3 (List.length (Bench.regressions verdicts));
  (* an improvement beyond tolerance is not a regression *)
  let improved = Bench.make ~rev:"cur" [ mk_series "up.ok" 300. true ] in
  let v = Bench.diff ~baseline:(Bench.make ~rev:"b" [ mk_series "up.ok" 100. true ]) improved in
  Helpers.check_bool "improvement ok" false (List.hd v).Bench.regression

(* ------------------------------------------------------------------ *)
(* Round trip: recorded trace -> history -> dynamic-atomicity checker. *)

let roundtrip_setups =
  [
    Experiment.setup Recovery.UIP Experiment.Semantic;
    Experiment.setup Recovery.DU Experiment.Semantic;
    Experiment.setup ~occ:true Recovery.DU Experiment.Semantic;
    Experiment.setup Recovery.UIP Experiment.Read_write;
  ]

let roundtrip_scenarios =
  [ Experiment.bank_hotspot; Experiment.inventory; Experiment.kv_store () ]

let trace_roundtrip_gen =
  QCheck2.Gen.(
    triple (int_bound 10_000)
      (oneofl roundtrip_setups)
      (oneofl roundtrip_scenarios))

let trace_roundtrip_prop (seed, s, scenario) =
  let cfg =
    Scheduler.config ~concurrency:3 ~total_txns:4 ~seed ~max_rounds:5_000
      ~max_retries:4 ()
  in
  let row = Experiment.run ~record_trace:true scenario s cfg in
  match row.Experiment.trace with
  | None -> false
  | Some tr ->
      let h = Trace.to_history tr in
      let env =
        Atomicity.env_of_list
          (List.map Atomic_object.spec (scenario.Experiment.build s))
      in
      History.is_well_formed h && Atomicity.is_online_dynamic_atomic env h

(* ------------------------------------------------------------------ *)
(* Series: the ring-buffer sampler behind shardmon.                    *)

module Series = Tm_obs.Series
module Heatmap = Tm_obs.Heatmap

let check_points = Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))

let test_series_ring_and_rates () =
  let s = Series.create ~capacity:3 () in
  let k = Series.key "tm_x" [ ("b", "2"); ("a", "1") ] in
  Alcotest.(check string) "labels render sorted" "tm_x{a=\"1\",b=\"2\"}" k;
  Alcotest.(check string) "no labels" "tm_y" (Series.key "tm_y" []);
  List.iteri
    (fun i v -> Series.observe s ~at:(float_of_int i) ~key:k (float_of_int v))
    [ 0; 10; 20; 30; 40 ];
  Helpers.check_int "ring clamps to capacity" 3 (Series.length s k);
  check_points "oldest points evicted"
    [ (2., 20.); (3., 30.); (4., 40.) ]
    (Series.points s k);
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
    "last" (Some (4., 40.)) (Series.last s k);
  check_float_opt "delta over the window" (Some 20.) (Series.delta s k);
  check_float_opt "rate per second" (Some 10.) (Series.rate s k);
  check_float_opt "rate needs two points" None
    (let s1 = Series.create () in
     Series.observe s1 ~at:0. ~key:"k" 1.;
     Series.rate s1 "k");
  Helpers.check_bool "sparkline non-empty" true (Series.sparkline s k <> "");
  Alcotest.(check string) "sparkline of unknown key" "" (Series.sparkline s "nope")

let test_series_sampling_sources () =
  let s = Series.create () in
  let body =
    "tm_txn_committed_total{shard=\"0\"} 5\n\
     tm_latency_bucket{le=\"10\"} 3\n\
     tm_latency_sum 12.5\n\
     tm_latency_count 3\n"
  in
  (match Heatmap.parse_prometheus body with
  | Error e -> Alcotest.fail e
  | Ok samples -> Series.sample s ~at:1. samples);
  Helpers.check_bool "_bucket series skipped" true
    (not (List.exists (fun k -> contains k "_bucket") (Series.keys s)));
  check_float_opt "snapshot sums kept" (Some 12.5)
    (Option.map snd (Series.last s "tm_latency_sum"));
  check_float_opt "labeled counter sampled" (Some 5.)
    (Option.map snd
       (Series.last s (Series.key "tm_txn_committed_total" [ ("shard", "0") ])));
  (* Registry source: histograms flatten to _count/_sum points. *)
  let reg = Metrics.create () in
  Metrics.Counter.incr ~by:7 (Metrics.counter reg ~labels:[ ("shard", "1") ] "tm_c");
  let h = Metrics.histogram reg ~buckets:[| 10. |] "tm_h" in
  Metrics.Histogram.observe h 4.;
  Series.sample_registry s ~at:2. reg;
  check_float_opt "registry counter" (Some 7.)
    (Option.map snd (Series.last s (Series.key "tm_c" [ ("shard", "1") ])));
  check_float_opt "histogram count" (Some 1.)
    (Option.map snd (Series.last s "tm_h_count"));
  check_float_opt "histogram sum" (Some 4.)
    (Option.map snd (Series.last s "tm_h_sum"))

let test_series_jsonl_roundtrip () =
  let s = Series.create ~capacity:8 () in
  let k1 = Series.key "tm_a" []
  and k2 = Series.key "tm_b" [ ("shard", "0") ] in
  List.iter (fun (t, v) -> Series.observe s ~at:t ~key:k1 v) [ (0., 1.); (1., 2.) ];
  Series.observe s ~at:0.5 ~key:k2 9.;
  let header = Artifact.header_line (Artifact.make ~schema:Artifact.series_schema ()) in
  (match Series.of_jsonl (header ^ Series.to_jsonl s) with
  | Error e -> Alcotest.fail e
  | Ok s' ->
      Alcotest.(check (list string))
        "keys preserved in order" (Series.keys s) (Series.keys s');
      List.iter
        (fun k -> check_points k (Series.points s k) (Series.points s' k))
        (Series.keys s));
  (match
     Series.of_jsonl
       (Artifact.header_line (Artifact.make ~schema:Artifact.trace_schema ())
       ^ Series.to_jsonl s)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign artifact header accepted")

let suite =
  [
    Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
    Alcotest.test_case "histogram overflow clamp" `Quick test_histogram_overflow_clamp;
    Alcotest.test_case "histogram empty / bad buckets" `Quick
      test_histogram_empty_and_bad_buckets;
    Alcotest.test_case "quantile: single sample" `Quick test_quantile_single_sample;
    Alcotest.test_case "quantile: all-equal samples" `Quick test_quantile_all_equal;
    Alcotest.test_case "quantile: monotone in q" `Quick test_quantile_monotone_in_q;
    Alcotest.test_case "artifact header round trip" `Quick test_artifact_roundtrip;
    Alcotest.test_case "trace parser skips/validates header" `Quick
      test_trace_parse_skips_and_validates_header;
    Alcotest.test_case "report validates metrics header" `Quick
      test_report_validates_metrics_header;
    Alcotest.test_case "catalog covers live registries" `Quick
      test_catalog_covers_live_registries;
    Alcotest.test_case "catalog rejects strays" `Quick test_catalog_rejects_strays;
    Alcotest.test_case "catalog markdown complete" `Quick
      test_catalog_markdown_mentions_everything;
    Alcotest.test_case "bench baseline round trip" `Quick test_bench_roundtrip;
    Alcotest.test_case "bench diff verdicts" `Quick test_bench_diff_verdicts;
    Alcotest.test_case "labeled counters" `Quick test_counter_idempotent_and_labels;
    Alcotest.test_case "type clash" `Quick test_type_clash;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "merge bucket mismatch" `Quick test_merge_bucket_mismatch;
    Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
    Alcotest.test_case "database counters registry-backed" `Quick
      test_database_counters_registry_backed;
    Alcotest.test_case "trace spans" `Quick test_trace_spans;
    Alcotest.test_case "concurrent accessors" `Quick test_concurrent_accessors;
    Alcotest.test_case "scheduler row counters" `Quick test_scheduler_row_counters;
    Helpers.qcheck ~count:30 "trace -> history round trip accepted by checker"
      trace_roundtrip_gen trace_roundtrip_prop;
    Alcotest.test_case "series ring eviction and rates" `Quick
      test_series_ring_and_rates;
    Alcotest.test_case "series sampling sources" `Quick
      test_series_sampling_sources;
    Alcotest.test_case "series jsonl round trip" `Quick
      test_series_jsonl_roundtrip;
  ]
