(* Observability: the metrics registry (bucketing, quantiles, labeled
   merging, Prometheus export), transaction tracing, and the round trip
   recorded trace -> history -> dynamic-atomicity checker. *)

open Tm_core
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace
module Atomic_object = Tm_engine.Atomic_object
module Database = Tm_engine.Database
module Concurrent = Tm_engine.Concurrent
module Recovery = Tm_engine.Recovery
module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler
module BA = Tm_adt.Bank_account

let check_float = Alcotest.(check (float 1e-9))
let check_float_opt = Alcotest.(check (option (float 1e-9)))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Histogram bucketing and quantile estimation.                        *)

let test_histogram_bucketing () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 10.; 20.; 30. |] "h" in
  List.iter (Metrics.Histogram.observe h) [ 5.; 15.; 25. ];
  Helpers.check_int "count" 3 (Metrics.Histogram.count h);
  check_float "sum" 45. (Metrics.Histogram.sum h);
  (* rank 1.5 falls in (10,20] with one observation below: interpolates
     to the middle of the bucket *)
  check_float_opt "p50" (Some 15.) (Metrics.Histogram.quantile h 0.5);
  check_float_opt "p100" (Some 30.) (Metrics.Histogram.quantile h 1.0);
  check_float_opt "p0" (Some 0.) (Metrics.Histogram.quantile h 0.)

let test_histogram_overflow_clamp () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 10.; 20.; 30. |] "h" in
  Metrics.Histogram.observe h 1000.;
  (* everything in the overflow bucket: clamped to the largest bound *)
  check_float_opt "clamped" (Some 30.) (Metrics.Histogram.quantile h 0.5)

let test_histogram_empty_and_bad_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 1.; 2. |] "h" in
  check_float_opt "empty" None (Metrics.Histogram.quantile h 0.5);
  Alcotest.check_raises "non-increasing" (Invalid_argument
    "Metrics.histogram: bucket bounds must be strictly increasing") (fun () ->
      ignore (Metrics.histogram reg ~buckets:[| 2.; 2. |] "h2"))

(* ------------------------------------------------------------------ *)
(* Registry semantics: idempotent handles, labels, merging.            *)

let test_counter_idempotent_and_labels () =
  let reg = Metrics.create () in
  let c1 = Metrics.counter reg ~labels:[ ("a", "1"); ("b", "2") ] "c" in
  (* same series under reordered labels *)
  let c2 = Metrics.counter reg ~labels:[ ("b", "2"); ("a", "1") ] "c" in
  Metrics.Counter.incr c1;
  Metrics.Counter.incr ~by:2 c2;
  Helpers.check_int "one series" 3
    (Metrics.counter_value reg ~labels:[ ("a", "1"); ("b", "2") ] "c");
  Helpers.check_int "absent reads 0" 0 (Metrics.counter_value reg "absent");
  Metrics.Counter.incr ~by:10 (Metrics.counter reg ~labels:[ ("a", "other") ] "c");
  Helpers.check_int "family total" 13 (Metrics.counter_total reg "c")

let test_type_clash () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "x");
  Alcotest.check_raises "counter as gauge" (Invalid_argument
    "Metrics: x already registered as a counter, requested as a gauge") (fun () ->
      ignore (Metrics.gauge reg "x"))

let test_merge () =
  let src = Metrics.create () in
  Metrics.Counter.incr ~by:3 (Metrics.counter src ~labels:[ ("k", "v") ] "c");
  Metrics.Gauge.set (Metrics.gauge src "g") 7.;
  let hs = Metrics.histogram src ~buckets:[| 1.; 2. |] "h" in
  Metrics.Histogram.observe hs 1.5;
  let dst = Metrics.create () in
  Metrics.Counter.incr ~by:2
    (Metrics.counter dst ~labels:[ ("k", "v"); ("run", "a") ] "c");
  Metrics.merge ~extra_labels:[ ("run", "a") ] dst src;
  Helpers.check_int "counters accumulate" 5
    (Metrics.counter_value dst ~labels:[ ("k", "v"); ("run", "a") ] "c");
  check_float_opt "gauge copied" (Some 7.)
    (Metrics.gauge_value dst ~labels:[ ("run", "a") ] "g");
  let hd = Metrics.histogram dst ~labels:[ ("run", "a") ] ~buckets:[| 1.; 2. |] "h" in
  Helpers.check_int "histogram accumulates" 1 (Metrics.Histogram.count hd);
  (* merging again doubles the counter *)
  Metrics.merge ~extra_labels:[ ("run", "a") ] dst src;
  Helpers.check_int "second merge" 8
    (Metrics.counter_value dst ~labels:[ ("k", "v"); ("run", "a") ] "c")

let test_merge_bucket_mismatch () =
  let src = Metrics.create () in
  ignore (Metrics.histogram src ~buckets:[| 1.; 2. |] "h");
  let dst = Metrics.create () in
  ignore (Metrics.histogram dst ~buckets:[| 5.; 6. |] "h");
  Alcotest.check_raises "bucket mismatch" (Invalid_argument
    "Metrics: histogram h re-registered with different buckets") (fun () ->
      Metrics.merge dst src)

let test_prometheus_export () =
  let reg = Metrics.create () in
  Metrics.Counter.incr ~by:4 (Metrics.counter reg ~labels:[ ("obj", "BA") ] "tm_c");
  let h = Metrics.histogram reg ~buckets:[| 1.; 2. |] "tm_h" in
  Metrics.Histogram.observe h 1.5;
  let out = Metrics.to_prometheus reg in
  List.iter
    (fun needle -> Helpers.check_bool needle true (contains out needle))
    [
      "# TYPE tm_c counter";
      "tm_c{obj=\"BA\"} 4";
      "# TYPE tm_h histogram";
      "tm_h_bucket{le=\"1\"} 0";
      "tm_h_bucket{le=\"2\"} 1";
      "tm_h_bucket{le=\"+Inf\"} 1";
      "tm_h_sum 1.5";
      "tm_h_count 1";
    ]

(* ------------------------------------------------------------------ *)
(* Engine wiring: database counters and trace spans.                   *)

let deposit_inv i = Op.invocation ~args:[ Value.int i ] "deposit"

let make_db () =
  Database.create
    [
      Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
        ~recovery:Recovery.UIP ();
    ]

let test_database_counters_registry_backed () =
  let db = make_db () in
  let t = Database.begin_txn db in
  (match Database.invoke db t ~obj:"BA" (deposit_inv 5) with
  | Atomic_object.Executed _ -> ()
  | _ -> Alcotest.fail "deposit should execute");
  Database.commit db t;
  let u = Database.begin_txn db in
  ignore (Database.invoke db u ~obj:"BA" (deposit_inv 1));
  Database.abort db u;
  let reg = Database.metrics db in
  Helpers.check_int "committed_count" 1 (Database.committed_count db);
  Helpers.check_int "backing counter" 1
    (Metrics.counter_value reg "tm_txn_committed_total");
  Helpers.check_int "aborted_count" 1 (Database.aborted_count db);
  Helpers.check_int "aborted counter" 1
    (Metrics.counter_value reg "tm_txn_aborted_total");
  Helpers.check_int "begins" 2 (Metrics.counter_value reg "tm_txn_begins_total");
  Helpers.check_int "executed invocations" 2
    (Metrics.counter_value reg ~labels:[ ("outcome", "executed") ]
       "tm_invocations_total")

let test_trace_spans () =
  let db = make_db () in
  let tr = Trace.create () in
  Database.set_trace db tr;
  let t = Database.begin_txn db in
  ignore (Database.invoke db t ~obj:"BA" (deposit_inv 5));
  Database.commit db t;
  let kinds = List.map (fun e -> Trace.kind_name e.Trace.kind) (Trace.events tr) in
  Alcotest.(check (list string)) "span sequence"
    [ "begin"; "invoke"; "executed"; "lock_release"; "commit" ]
    kinds;
  (* timestamps are the monotonic emission order *)
  Alcotest.(check (list int)) "timestamps" [ 0; 1; 2; 3; 4 ]
    (List.map (fun e -> e.Trace.ts) (Trace.events tr));
  let json = Trace.to_jsonl ~extra:[ ("setup", "UIP+NRBC") ] tr in
  List.iter
    (fun needle -> Helpers.check_bool needle true (contains json needle))
    [ "\"event\":\"begin\""; "\"event\":\"executed\""; "\"setup\":\"UIP+NRBC\"" ]

let test_concurrent_accessors () =
  let db =
    Concurrent.create
      [
        Atomic_object.create ~spec:BA.spec ~conflict:BA.nrbc_conflict
          ~recovery:Recovery.UIP ();
      ]
  in
  (match
     Concurrent.with_txn db (fun h ->
         Concurrent.invoke h ~obj:"BA" (deposit_inv 5))
   with
  | Ok _ -> ()
  | Error (`Gave_up _) -> Alcotest.fail "unexpected abort");
  Helpers.check_int "committed" 1 (Concurrent.committed_count db);
  Helpers.check_int "no victims" 0 (Concurrent.deadlock_victim_count db);
  Helpers.check_int "no retries" 0 (Concurrent.retry_count db)

let test_scheduler_row_counters () =
  let cfg = Scheduler.config ~concurrency:8 ~total_txns:60 ~seed:11 () in
  let row =
    Experiment.run Experiment.bank_hotspot
      (Experiment.setup Recovery.UIP Experiment.Semantic)
      cfg
  in
  Helpers.check_bool "consistent" true row.Experiment.consistent;
  Helpers.check_int "victims counter mirrors deadlock aborts"
    row.Experiment.stats.Scheduler.deadlock_aborts row.Experiment.deadlock_victims;
  Helpers.check_int "rounds counter" row.Experiment.stats.Scheduler.rounds
    (Metrics.counter_value row.Experiment.metrics "tm_sched_rounds_total")

(* ------------------------------------------------------------------ *)
(* Round trip: recorded trace -> history -> dynamic-atomicity checker. *)

let roundtrip_setups =
  [
    Experiment.setup Recovery.UIP Experiment.Semantic;
    Experiment.setup Recovery.DU Experiment.Semantic;
    Experiment.setup ~occ:true Recovery.DU Experiment.Semantic;
    Experiment.setup Recovery.UIP Experiment.Read_write;
  ]

let roundtrip_scenarios =
  [ Experiment.bank_hotspot; Experiment.inventory; Experiment.kv_store () ]

let trace_roundtrip_gen =
  QCheck2.Gen.(
    triple (int_bound 10_000)
      (oneofl roundtrip_setups)
      (oneofl roundtrip_scenarios))

let trace_roundtrip_prop (seed, s, scenario) =
  let cfg =
    Scheduler.config ~concurrency:3 ~total_txns:4 ~seed ~max_rounds:5_000
      ~max_retries:4 ()
  in
  let row = Experiment.run ~record_trace:true scenario s cfg in
  match row.Experiment.trace with
  | None -> false
  | Some tr ->
      let h = Trace.to_history tr in
      let env =
        Atomicity.env_of_list
          (List.map Atomic_object.spec (scenario.Experiment.build s))
      in
      History.is_well_formed h && Atomicity.is_online_dynamic_atomic env h

let suite =
  [
    Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
    Alcotest.test_case "histogram overflow clamp" `Quick test_histogram_overflow_clamp;
    Alcotest.test_case "histogram empty / bad buckets" `Quick
      test_histogram_empty_and_bad_buckets;
    Alcotest.test_case "labeled counters" `Quick test_counter_idempotent_and_labels;
    Alcotest.test_case "type clash" `Quick test_type_clash;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "merge bucket mismatch" `Quick test_merge_bucket_mismatch;
    Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
    Alcotest.test_case "database counters registry-backed" `Quick
      test_database_counters_registry_backed;
    Alcotest.test_case "trace spans" `Quick test_trace_spans;
    Alcotest.test_case "concurrent accessors" `Quick test_concurrent_accessors;
    Alcotest.test_case "scheduler row counters" `Quick test_scheduler_row_counters;
    Helpers.qcheck ~count:30 "trace -> history round trip accepted by checker"
      trace_roundtrip_gen trace_roundtrip_prop;
  ]
