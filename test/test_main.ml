(* Aggregate test runner: one Alcotest suite per module of the library. *)

let () =
  Alcotest.run "weihl89"
    [
      ("value", Test_value.suite);
      ("op-event", Test_op_event.suite);
      ("history", Test_history.suite);
      ("spec", Test_spec.suite);
      ("equieffect", Test_equieffect.suite);
      ("commutativity", Test_commutativity.suite);
      ("conflict", Test_conflict.suite);
      ("view", Test_view.suite);
      ("atomicity", Test_atomicity.suite);
      ("impl-model", Test_impl_model.suite);
      ("theorems", Test_theorems.suite);
      ("adts", Test_adts.suite);
      ("engine", Test_engine.suite);
      ("occ", Test_occ.suite);
      ("concurrent", Test_concurrent.suite);
      ("escrow", Test_escrow.suite);
      ("wal", Test_wal.suite);
      ("storage", Test_storage.suite);
      ("golden", Test_golden.suite);
      ("crash", Test_crash.suite);
      ("registry", Test_registry.suite);
      ("properties", Test_properties.suite);
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("analytics", Test_analytics.suite);
      ("walinspect", Test_walinspect.suite);
      ("sharded", Test_sharded.suite);
    ]
