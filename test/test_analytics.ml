(* Trace analytics: JSON parsing, JSONL import round trip, timeline
   phase segmentation (the tiling invariant), blocking edges, conflict
   heat maps (including the Prometheus text round trip and UIP-vs-DU
   comparison), and the report/Perfetto exporters. *)

open Tm_core
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace
module Json = Tm_obs.Json
module Timeline = Tm_obs.Timeline
module Blocking = Tm_obs.Blocking
module Heatmap = Tm_obs.Heatmap
module Report = Tm_obs.Report
module Recovery = Tm_engine.Recovery
module Atomic_object = Tm_engine.Atomic_object
module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler

let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Json: parse/print round trip.                                       *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Str "quote \" backslash \\ newline \n tab \t");
        ("c", Json.List [ Json.Null; Json.Bool true; Json.Float 1.5 ]);
        ("d", Json.Obj []);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> check_bool "round trip" true (v = v')
  | Error e -> Alcotest.fail ("parse: " ^ e)

let test_json_errors () =
  List.iter
    (fun s -> check_bool s true (Result.is_error (Json.parse s)))
    [ "{"; "[1,]"; "\"unterminated"; "{\"a\" 1}"; "tru"; "" ]

let test_json_ints_stay_ints () =
  match Json.parse "{\"ts\":12345}" with
  | Ok (Json.Obj [ ("ts", Json.Int 12345) ]) -> ()
  | Ok j -> Alcotest.failf "unexpected %s" (Json.to_string j)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Trace JSONL import: exact inverse of the exporter.                  *)

let small_cfg seed =
  Scheduler.config ~concurrency:4 ~total_txns:12 ~seed ~max_rounds:20_000 ()

let uip = Experiment.setup Recovery.UIP Experiment.Semantic
let du = Experiment.setup Recovery.DU Experiment.Semantic

let recorded_trace () =
  let row =
    Experiment.run ~record_trace:true Experiment.bank_hotspot uip (small_cfg 3)
  in
  match row.Experiment.trace with
  | Some tr -> tr
  | None -> Alcotest.fail "no trace recorded"

let test_jsonl_roundtrip () =
  let tr = recorded_trace () in
  let extra = [ ("scenario", "bank-hotspot"); ("setup", "UIP+NRBC") ] in
  let dumped = Trace.to_jsonl ~extra tr in
  match Trace.parse_jsonl dumped with
  | Error e -> Alcotest.fail e
  | Ok lines ->
      let events = Trace.events tr in
      check_int "all lines parsed" (List.length events) (List.length lines);
      List.iter2
        (fun (e : Trace.event) ((e' : Trace.event), extras) ->
          check_bool "event equal" true (e = e');
          check_bool "extras preserved" true (List.sort compare extras = List.sort compare extra))
        events lines;
      (* and re-exporting the parsed events is byte-identical *)
      let rebuilt = Trace.of_events (List.map fst lines) in
      Alcotest.(check string) "re-export" (Trace.to_jsonl ~extra tr)
        (Trace.to_jsonl ~extra rebuilt)

let test_jsonl_bad_line () =
  check_bool "bad line rejected" true
    (Result.is_error (Trace.parse_jsonl "{\"ts\":0,\"tid\":\"A\"}\nnot json\n"))

(* ------------------------------------------------------------------ *)
(* Timeline: the tiling invariant — phases sum to each span.           *)

let timelines_of_row (row : Experiment.row) =
  match row.Experiment.trace with
  | Some tr -> Timeline.of_events (Trace.events tr)
  | None -> Alcotest.fail "no trace recorded"

let assert_tiling txns =
  check_bool "some transactions" true (txns <> []);
  List.iter
    (fun (t : Timeline.txn) ->
      check_bool "segments tile the span" true (Timeline.consistent t);
      let by_phase =
        List.fold_left
          (fun acc ph -> acc + Timeline.phase_total t ph)
          0 Timeline.all_phases
      in
      check_int "phase totals sum to duration" (Timeline.duration t) by_phase)
    txns

let test_timeline_tiling_locking () =
  let row =
    Experiment.run ~record_trace:true Experiment.bank_hotspot uip (small_cfg 7)
  in
  let txns = timelines_of_row row in
  assert_tiling txns;
  (* a contended hot spot must show lock waiting somewhere *)
  check_bool "some lock wait observed" true
    (List.exists (fun t -> Timeline.phase_total t Timeline.Lock_wait > 0) txns)

let test_timeline_tiling_occ () =
  let row =
    Experiment.run ~record_trace:true Experiment.bank_hotspot
      (Experiment.setup ~occ:true Recovery.DU Experiment.Semantic)
      (small_cfg 7)
  in
  let txns = timelines_of_row row in
  assert_tiling txns;
  check_bool "validation phases recorded" true
    (List.exists (fun t -> Timeline.phase_total t Timeline.Validate > 0) txns)

let test_timeline_tiling_durable_group_commit () =
  let row, _wal =
    Experiment.run_durable ~record_trace:true ~group_commit:4
      Experiment.bank_hotspot uip (small_cfg 7)
  in
  let txns = timelines_of_row row in
  assert_tiling txns;
  check_bool "flush-wait phases recorded" true
    (List.exists (fun t -> Timeline.phase_total t Timeline.Flush_wait > 0) txns);
  List.iter
    (fun (t : Timeline.txn) ->
      check_int
        (Fmt.str "%s wait_by_obj matches phases" (Tid.to_string t.Timeline.tid))
        (Timeline.phase_total t Timeline.Lock_wait
        + Timeline.phase_total t Timeline.Stall)
        (List.fold_left (fun acc (_, d) -> acc + d) 0 (Timeline.wait_by_obj t)))
    txns

(* Replay of a durable trace (wal_flush_wait / durable / group-commit
   spans present): non-operation spans are ignored and the history
   passes the dynamic-atomicity checker.  Transactions kept few so the
   exponential check runs. *)
let durable_replay_gen = QCheck2.Gen.(int_bound 10_000)

let durable_replay_prop seed =
  let cfg =
    Scheduler.config ~concurrency:3 ~total_txns:4 ~seed ~max_rounds:5_000
      ~max_retries:4 ()
  in
  let row, _wal =
    Experiment.run_durable ~record_trace:true ~group_commit:3 ~checkpoint_every:2
      Experiment.bank_hotspot du cfg
  in
  match row.Experiment.trace with
  | None -> false
  | Some tr ->
      (* the trace really contains the PR4/PR5 span kinds under test *)
      let kinds = List.map (fun e -> Trace.kind_name e.Trace.kind) (Trace.events tr) in
      List.mem "wal_flush_wait" kinds
      && List.mem "durable" kinds
      && List.mem "lock_release" kinds
      &&
      let h = Trace.to_history tr in
      let env =
        Atomicity.env_of_list
          (List.map Atomic_object.spec (Experiment.bank_hotspot.Experiment.build du))
      in
      History.is_well_formed h && Atomicity.is_online_dynamic_atomic env h

(* ------------------------------------------------------------------ *)
(* Blocking: edges and critical-path attribution.                      *)

let test_blocking_edges () =
  let row =
    Experiment.run ~record_trace:true Experiment.bank_hotspot uip (small_cfg 7)
  in
  let events =
    match row.Experiment.trace with
    | Some tr -> Trace.events tr
    | None -> Alcotest.fail "no trace"
  in
  let edges = Blocking.edges events in
  check_bool "hot spot produces blocking edges" true (edges <> []);
  List.iter
    (fun (e : Blocking.edge) ->
      check_bool "positive weight" true (Blocking.weight e > 0);
      check_bool "no self-blocking" true (not (Tid.equal e.Blocking.blocked e.Blocking.holder)))
    edges;
  let by_obj = Blocking.by_object edges in
  check_bool "all blocking at the hot object" true
    (match by_obj with [ ("BA", w, n) ] -> w > 0 && n > 0 | _ -> false);
  (* blame totals tie out to the edge list *)
  let total_w = List.fold_left (fun a e -> a + Blocking.weight e) 0 edges in
  let blame_w =
    List.fold_left (fun a (_, w, _) -> a + w) 0 (Blocking.by_holder edges)
  in
  check_int "blame conserves weight" total_w blame_w

let test_critical_paths () =
  let row =
    Experiment.run ~record_trace:true Experiment.bank_hotspot uip (small_cfg 7)
  in
  let txns = timelines_of_row row in
  List.iter
    (fun ((t : Timeline.txn), phases) ->
      check_int "critical path sums to span" (Timeline.duration t)
        (List.fold_left (fun a (_, d) -> a + d) 0 phases))
    (Blocking.critical_paths txns);
  (* flame rows: top-level phases also conserve the total ticks *)
  let flame = Blocking.flame txns in
  let total_spans =
    List.fold_left (fun a (t : Timeline.txn) -> a + Timeline.duration t) 0 txns
  in
  let flame_top =
    List.fold_left
      (fun a (path, d) -> match path with [ _ ] -> a + d | _ -> a)
      0 flame
  in
  check_int "flame conserves ticks" total_spans flame_top

(* ------------------------------------------------------------------ *)
(* Prometheus label escaping: exporter and parser are inverses.        *)

let test_prometheus_escaping_roundtrip () =
  let nasty = "a\\b\"c\nd" in
  let reg = Metrics.create () in
  Metrics.Counter.incr ~by:5 (Metrics.counter reg ~labels:[ ("k", nasty) ] "tm_x");
  let text = Metrics.to_prometheus reg in
  (* the raw newline must not survive into the sample line *)
  check_bool "newline escaped in the text format" true (contains text "\\n");
  check_bool "quote escaped in the text format" true (contains text "\\\"");
  match Heatmap.parse_prometheus text with
  | Error e -> Alcotest.fail e
  | Ok samples -> (
      match List.find_opt (fun (n, _, _) -> n = "tm_x") samples with
      | Some (_, labels, v) ->
          Alcotest.(check (option string)) "label value round trips"
            (Some nasty) (List.assoc_opt "k" labels);
          check_int "value" 5 (int_of_float v)
      | None -> Alcotest.fail "series lost")

(* ------------------------------------------------------------------ *)
(* Heat maps: engine wiring and the UIP-vs-DU comparison.              *)

(* The bench's OBS-A aggregation: one scenario under both semantic
   setups merged into a labelled registry. *)
let merged_registry scenario =
  let merged = Metrics.create () in
  List.iter
    (fun s ->
      let r = Experiment.run scenario s (small_cfg 7) in
      Metrics.merge
        ~extra_labels:[ ("scenario", r.Experiment.scenario); ("setup", r.Experiment.setup) ]
        merged r.Experiment.metrics)
    [ uip; du ];
  merged

let heatmaps_for scenario = Heatmap.of_metrics (merged_registry scenario)

let test_heatmap_comparison_two_adts () =
  List.iter
    (fun (scenario, obj) ->
      let maps = heatmaps_for scenario in
      check_bool "maps for both setups" true (List.length maps >= 2);
      let rows = Heatmap.comparison ~by:"setup" maps in
      check_bool "comparison non-empty" true (rows <> []);
      List.iter
        (fun (shared, variants) ->
          Alcotest.(check (option string)) "paired on the object" (Some obj)
            (List.assoc_opt "obj" shared);
          check_int "both setups present" 2 (List.length variants);
          List.iter
            (fun (_, m) -> check_bool "matrix non-empty" true (Heatmap.total m > 0))
            variants)
        rows)
    [ (Experiment.bank_hotspot, "BA"); (Experiment.queue_semiqueue, "SQ") ]

let test_heatmap_prometheus_roundtrip () =
  let merged = merged_registry Experiment.bank_hotspot in
  let maps = Heatmap.of_metrics merged in
  check_bool "live maps exist" true (maps <> []);
  match Heatmap.of_prometheus (Metrics.to_prometheus merged) with
  | Error e -> Alcotest.fail e
  | Ok maps' -> check_bool "offline equals live" true (maps = maps')

(* ------------------------------------------------------------------ *)
(* Report and the Perfetto exporter.                                   *)

let report_of_run () =
  let rows =
    List.map
      (fun s ->
        Experiment.run ~record_trace:true Experiment.bank_hotspot s (small_cfg 7))
      [ uip; du ]
  in
  let trace_jsonl =
    String.concat ""
      (List.filter_map
         (fun (r : Experiment.row) ->
           Option.map
             (Trace.to_jsonl ~extra:[ ("scenario", r.scenario); ("setup", r.setup) ])
             r.Experiment.trace)
         rows)
  in
  let merged = Metrics.create () in
  List.iter
    (fun (r : Experiment.row) ->
      Metrics.merge
        ~extra_labels:[ ("scenario", r.scenario); ("setup", r.setup) ]
        merged r.Experiment.metrics)
    rows;
  match
    Report.of_sources ~trace_jsonl ~metrics_text:(Metrics.to_prometheus merged) ()
  with
  | Ok rep -> rep
  | Error e -> Alcotest.fail e

let test_report_groups_and_text () =
  let rep = report_of_run () in
  check_bool "not empty" true (not (Report.is_empty rep));
  check_int "one group per setup" 2 (List.length rep.Report.groups);
  let text = Report.to_text rep in
  List.iter
    (fun needle -> check_bool needle true (contains text needle))
    [ "setup=UIP+NRBC"; "setup=DU+NFC"; "-- timelines --"; "heat-map comparison" ];
  check_bool "no broken timelines" true (not (contains text "BROKEN"))

let test_perfetto_golden () =
  let rep = report_of_run () in
  let out = Report.to_perfetto rep in
  (* determinism: exporting twice is byte-identical *)
  Alcotest.(check string) "deterministic" out (Report.to_perfetto rep);
  match Json.parse out with
  | Error e -> Alcotest.fail ("invalid JSON: " ^ e)
  | Ok j ->
      let events =
        match Json.member "traceEvents" j with
        | Some (Json.List es) -> es
        | _ -> Alcotest.fail "no traceEvents array"
      in
      check_bool "has events" true (events <> []);
      (* ts monotone over the whole stream *)
      let ts_of e =
        match Json.member "ts" e with Some (Json.Int t) -> Some t | _ -> None
      in
      let tss = List.filter_map ts_of events in
      check_bool "ts monotone" true
        (fst
           (List.fold_left
              (fun (ok, prev) t -> (ok && t >= prev, t))
              (true, min_int) tss));
      (* pid mapping: groups numbered in first-appearance order, with
         process_name metadata naming each *)
      let meta_names =
        List.filter_map
          (fun e ->
            match (Json.member "ph" e, Json.member "name" e) with
            | Some (Json.Str "M"), Some (Json.Str "process_name") -> (
                match (Json.member "pid" e, Json.member "args" e) with
                | Some (Json.Int pid), Some args -> (
                    match Json.member "name" args with
                    | Some (Json.Str n) -> Some (pid, n)
                    | _ -> None)
                | _ -> None)
            | _ -> None)
          events
      in
      check_bool "pid 1 is the first group (UIP ran first)" true
        (match List.assoc_opt 1 meta_names with
        | Some n -> contains n "UIP"
        | None -> false);
      check_int "two processes" 2
        (List.length (List.sort_uniq compare (List.map fst meta_names)));
      (* every slice carries pid/tid/dur and a known phase name *)
      let phase_names = List.map Timeline.phase_name Timeline.all_phases in
      List.iter
        (fun e ->
          match Json.member "ph" e with
          | Some (Json.Str "X") ->
              check_bool "slice has pid" true (Json.member "pid" e <> None);
              check_bool "slice has tid" true (Json.member "tid" e <> None);
              (match (Json.member "name" e, Json.member "dur" e) with
              | Some (Json.Str n), Some (Json.Int d) ->
                  check_bool ("phase name " ^ n) true (List.mem n phase_names);
                  check_bool "positive dur" true (d > 0)
              | _ -> Alcotest.fail "slice missing name/dur")
          | _ -> ())
        events

let test_report_empty_sources () =
  match Report.of_sources () with
  | Ok rep -> check_bool "empty" true (Report.is_empty rep)
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json ints stay ints" `Quick test_json_ints_stay_ints;
    Alcotest.test_case "trace jsonl round trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "trace jsonl bad line" `Quick test_jsonl_bad_line;
    Alcotest.test_case "timeline tiling (locking)" `Quick test_timeline_tiling_locking;
    Alcotest.test_case "timeline tiling (occ validate)" `Quick test_timeline_tiling_occ;
    Alcotest.test_case "timeline tiling (durable, group commit)" `Quick
      test_timeline_tiling_durable_group_commit;
    Helpers.qcheck ~count:25 "durable trace replay passes the checker"
      durable_replay_gen durable_replay_prop;
    Alcotest.test_case "blocking edges" `Quick test_blocking_edges;
    Alcotest.test_case "critical paths sum to spans" `Quick test_critical_paths;
    Alcotest.test_case "prometheus escaping round trip" `Quick
      test_prometheus_escaping_roundtrip;
    Alcotest.test_case "heat-map comparison (BA, SQ)" `Quick
      test_heatmap_comparison_two_adts;
    Alcotest.test_case "heat maps offline = live" `Quick
      test_heatmap_prometheus_roundtrip;
    Alcotest.test_case "report groups and text" `Quick test_report_groups_and_text;
    Alcotest.test_case "perfetto exporter golden" `Quick test_perfetto_golden;
    Alcotest.test_case "report of empty sources" `Quick test_report_empty_sources;
  ]
