(* Trace analytics: JSON parsing, JSONL import round trip, timeline
   phase segmentation (the tiling invariant), blocking edges, conflict
   heat maps (including the Prometheus text round trip and UIP-vs-DU
   comparison), and the report/Perfetto exporters. *)

open Tm_core
module Metrics = Tm_obs.Metrics
module Trace = Tm_obs.Trace
module Json = Tm_obs.Json
module Timeline = Tm_obs.Timeline
module Blocking = Tm_obs.Blocking
module Heatmap = Tm_obs.Heatmap
module Report = Tm_obs.Report
module Recovery = Tm_engine.Recovery
module Atomic_object = Tm_engine.Atomic_object
module Experiment = Tm_sim.Experiment
module Scheduler = Tm_sim.Scheduler

let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Json: parse/print round trip.                                       *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Str "quote \" backslash \\ newline \n tab \t");
        ("c", Json.List [ Json.Null; Json.Bool true; Json.Float 1.5 ]);
        ("d", Json.Obj []);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> check_bool "round trip" true (v = v')
  | Error e -> Alcotest.fail ("parse: " ^ e)

let test_json_errors () =
  List.iter
    (fun s -> check_bool s true (Result.is_error (Json.parse s)))
    [ "{"; "[1,]"; "\"unterminated"; "{\"a\" 1}"; "tru"; "" ]

let test_json_ints_stay_ints () =
  match Json.parse "{\"ts\":12345}" with
  | Ok (Json.Obj [ ("ts", Json.Int 12345) ]) -> ()
  | Ok j -> Alcotest.failf "unexpected %s" (Json.to_string j)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Trace JSONL import: exact inverse of the exporter.                  *)

let small_cfg seed =
  Scheduler.config ~concurrency:4 ~total_txns:12 ~seed ~max_rounds:20_000 ()

let uip = Experiment.setup Recovery.UIP Experiment.Semantic
let du = Experiment.setup Recovery.DU Experiment.Semantic

let recorded_trace () =
  let row =
    Experiment.run ~record_trace:true Experiment.bank_hotspot uip (small_cfg 3)
  in
  match row.Experiment.trace with
  | Some tr -> tr
  | None -> Alcotest.fail "no trace recorded"

let test_jsonl_roundtrip () =
  let tr = recorded_trace () in
  let extra = [ ("scenario", "bank-hotspot"); ("setup", "UIP+NRBC") ] in
  let dumped = Trace.to_jsonl ~extra tr in
  match Trace.parse_jsonl dumped with
  | Error e -> Alcotest.fail e
  | Ok lines ->
      let events = Trace.events tr in
      check_int "all lines parsed" (List.length events) (List.length lines);
      List.iter2
        (fun (e : Trace.event) ((e' : Trace.event), extras) ->
          check_bool "event equal" true (e = e');
          check_bool "extras preserved" true (List.sort compare extras = List.sort compare extra))
        events lines;
      (* and re-exporting the parsed events is byte-identical *)
      let rebuilt = Trace.of_events (List.map fst lines) in
      Alcotest.(check string) "re-export" (Trace.to_jsonl ~extra tr)
        (Trace.to_jsonl ~extra rebuilt)

let test_jsonl_bad_line () =
  check_bool "bad line rejected" true
    (Result.is_error (Trace.parse_jsonl "{\"ts\":0,\"tid\":\"A\"}\nnot json\n"))

(* ------------------------------------------------------------------ *)
(* Timeline: the tiling invariant — phases sum to each span.           *)

let timelines_of_row (row : Experiment.row) =
  match row.Experiment.trace with
  | Some tr -> Timeline.of_events (Trace.events tr)
  | None -> Alcotest.fail "no trace recorded"

let assert_tiling txns =
  check_bool "some transactions" true (txns <> []);
  List.iter
    (fun (t : Timeline.txn) ->
      check_bool "segments tile the span" true (Timeline.consistent t);
      let by_phase =
        List.fold_left
          (fun acc ph -> acc + Timeline.phase_total t ph)
          0 Timeline.all_phases
      in
      check_int "phase totals sum to duration" (Timeline.duration t) by_phase)
    txns

let test_timeline_tiling_locking () =
  let row =
    Experiment.run ~record_trace:true Experiment.bank_hotspot uip (small_cfg 7)
  in
  let txns = timelines_of_row row in
  assert_tiling txns;
  (* a contended hot spot must show lock waiting somewhere *)
  check_bool "some lock wait observed" true
    (List.exists (fun t -> Timeline.phase_total t Timeline.Lock_wait > 0) txns)

let test_timeline_tiling_occ () =
  let row =
    Experiment.run ~record_trace:true Experiment.bank_hotspot
      (Experiment.setup ~occ:true Recovery.DU Experiment.Semantic)
      (small_cfg 7)
  in
  let txns = timelines_of_row row in
  assert_tiling txns;
  check_bool "validation phases recorded" true
    (List.exists (fun t -> Timeline.phase_total t Timeline.Validate > 0) txns)

let test_timeline_tiling_durable_group_commit () =
  let row, _wal =
    Experiment.run_durable ~record_trace:true ~group_commit:4
      Experiment.bank_hotspot uip (small_cfg 7)
  in
  let txns = timelines_of_row row in
  assert_tiling txns;
  check_bool "flush-wait phases recorded" true
    (List.exists (fun t -> Timeline.phase_total t Timeline.Flush_wait > 0) txns);
  List.iter
    (fun (t : Timeline.txn) ->
      check_int
        (Fmt.str "%s wait_by_obj matches phases" (Tid.to_string t.Timeline.tid))
        (Timeline.phase_total t Timeline.Lock_wait
        + Timeline.phase_total t Timeline.Stall)
        (List.fold_left (fun acc (_, d) -> acc + d) 0 (Timeline.wait_by_obj t)))
    txns

(* Replay of a durable trace (wal_flush_wait / durable / group-commit
   spans present): non-operation spans are ignored and the history
   passes the dynamic-atomicity checker.  Transactions kept few so the
   exponential check runs. *)
let durable_replay_gen = QCheck2.Gen.(int_bound 10_000)

let durable_replay_prop seed =
  let cfg =
    Scheduler.config ~concurrency:3 ~total_txns:4 ~seed ~max_rounds:5_000
      ~max_retries:4 ()
  in
  let row, _wal =
    Experiment.run_durable ~record_trace:true ~group_commit:3 ~checkpoint_every:2
      Experiment.bank_hotspot du cfg
  in
  match row.Experiment.trace with
  | None -> false
  | Some tr ->
      (* the trace really contains the PR4/PR5 span kinds under test *)
      let kinds = List.map (fun e -> Trace.kind_name e.Trace.kind) (Trace.events tr) in
      List.mem "wal_flush_wait" kinds
      && List.mem "durable" kinds
      && List.mem "lock_release" kinds
      &&
      let h = Trace.to_history tr in
      let env =
        Atomicity.env_of_list
          (List.map Atomic_object.spec (Experiment.bank_hotspot.Experiment.build du))
      in
      History.is_well_formed h && Atomicity.is_online_dynamic_atomic env h

(* ------------------------------------------------------------------ *)
(* Blocking: edges and critical-path attribution.                      *)

let test_blocking_edges () =
  let row =
    Experiment.run ~record_trace:true Experiment.bank_hotspot uip (small_cfg 7)
  in
  let events =
    match row.Experiment.trace with
    | Some tr -> Trace.events tr
    | None -> Alcotest.fail "no trace"
  in
  let edges = Blocking.edges events in
  check_bool "hot spot produces blocking edges" true (edges <> []);
  List.iter
    (fun (e : Blocking.edge) ->
      check_bool "positive weight" true (Blocking.weight e > 0);
      check_bool "no self-blocking" true (not (Tid.equal e.Blocking.blocked e.Blocking.holder)))
    edges;
  let by_obj = Blocking.by_object edges in
  check_bool "all blocking at the hot object" true
    (match by_obj with [ ("BA", w, n) ] -> w > 0 && n > 0 | _ -> false);
  (* blame totals tie out to the edge list *)
  let total_w = List.fold_left (fun a e -> a + Blocking.weight e) 0 edges in
  let blame_w =
    List.fold_left (fun a (_, w, _) -> a + w) 0 (Blocking.by_holder edges)
  in
  check_int "blame conserves weight" total_w blame_w

let test_critical_paths () =
  let row =
    Experiment.run ~record_trace:true Experiment.bank_hotspot uip (small_cfg 7)
  in
  let txns = timelines_of_row row in
  List.iter
    (fun ((t : Timeline.txn), phases) ->
      check_int "critical path sums to span" (Timeline.duration t)
        (List.fold_left (fun a (_, d) -> a + d) 0 phases))
    (Blocking.critical_paths txns);
  (* flame rows: top-level phases also conserve the total ticks *)
  let flame = Blocking.flame txns in
  let total_spans =
    List.fold_left (fun a (t : Timeline.txn) -> a + Timeline.duration t) 0 txns
  in
  let flame_top =
    List.fold_left
      (fun a (path, d) -> match path with [ _ ] -> a + d | _ -> a)
      0 flame
  in
  check_int "flame conserves ticks" total_spans flame_top

(* ------------------------------------------------------------------ *)
(* Prometheus label escaping: exporter and parser are inverses.        *)

let test_prometheus_escaping_roundtrip () =
  let nasty = "a\\b\"c\nd" in
  let reg = Metrics.create () in
  Metrics.Counter.incr ~by:5 (Metrics.counter reg ~labels:[ ("k", nasty) ] "tm_x");
  let text = Metrics.to_prometheus reg in
  (* the raw newline must not survive into the sample line *)
  check_bool "newline escaped in the text format" true (contains text "\\n");
  check_bool "quote escaped in the text format" true (contains text "\\\"");
  match Heatmap.parse_prometheus text with
  | Error e -> Alcotest.fail e
  | Ok samples -> (
      match List.find_opt (fun (n, _, _) -> n = "tm_x") samples with
      | Some (_, labels, v) ->
          Alcotest.(check (option string)) "label value round trips"
            (Some nasty) (List.assoc_opt "k" labels);
          check_int "value" 5 (int_of_float v)
      | None -> Alcotest.fail "series lost")

(* ------------------------------------------------------------------ *)
(* Heat maps: engine wiring and the UIP-vs-DU comparison.              *)

(* The bench's OBS-A aggregation: one scenario under both semantic
   setups merged into a labelled registry. *)
let merged_registry scenario =
  let merged = Metrics.create () in
  List.iter
    (fun s ->
      let r = Experiment.run scenario s (small_cfg 7) in
      Metrics.merge
        ~extra_labels:[ ("scenario", r.Experiment.scenario); ("setup", r.Experiment.setup) ]
        merged r.Experiment.metrics)
    [ uip; du ];
  merged

let heatmaps_for scenario = Heatmap.of_metrics (merged_registry scenario)

let test_heatmap_comparison_two_adts () =
  List.iter
    (fun (scenario, obj) ->
      let maps = heatmaps_for scenario in
      check_bool "maps for both setups" true (List.length maps >= 2);
      let rows = Heatmap.comparison ~by:"setup" maps in
      check_bool "comparison non-empty" true (rows <> []);
      List.iter
        (fun (shared, variants) ->
          Alcotest.(check (option string)) "paired on the object" (Some obj)
            (List.assoc_opt "obj" shared);
          check_int "both setups present" 2 (List.length variants);
          List.iter
            (fun (_, m) -> check_bool "matrix non-empty" true (Heatmap.total m > 0))
            variants)
        rows)
    [ (Experiment.bank_hotspot, "BA"); (Experiment.queue_semiqueue, "SQ") ]

let test_heatmap_prometheus_roundtrip () =
  let merged = merged_registry Experiment.bank_hotspot in
  let maps = Heatmap.of_metrics merged in
  check_bool "live maps exist" true (maps <> []);
  match Heatmap.of_prometheus (Metrics.to_prometheus merged) with
  | Error e -> Alcotest.fail e
  | Ok maps' -> check_bool "offline equals live" true (maps = maps')

(* ------------------------------------------------------------------ *)
(* Report and the Perfetto exporter.                                   *)

let report_of_run () =
  let rows =
    List.map
      (fun s ->
        Experiment.run ~record_trace:true Experiment.bank_hotspot s (small_cfg 7))
      [ uip; du ]
  in
  let trace_jsonl =
    String.concat ""
      (List.filter_map
         (fun (r : Experiment.row) ->
           Option.map
             (Trace.to_jsonl ~extra:[ ("scenario", r.scenario); ("setup", r.setup) ])
             r.Experiment.trace)
         rows)
  in
  let merged = Metrics.create () in
  List.iter
    (fun (r : Experiment.row) ->
      Metrics.merge
        ~extra_labels:[ ("scenario", r.scenario); ("setup", r.setup) ]
        merged r.Experiment.metrics)
    rows;
  match
    Report.of_sources ~trace_jsonl ~metrics_text:(Metrics.to_prometheus merged) ()
  with
  | Ok rep -> rep
  | Error e -> Alcotest.fail e

let test_report_groups_and_text () =
  let rep = report_of_run () in
  check_bool "not empty" true (not (Report.is_empty rep));
  check_int "one group per setup" 2 (List.length rep.Report.groups);
  let text = Report.to_text rep in
  List.iter
    (fun needle -> check_bool needle true (contains text needle))
    [ "setup=UIP+NRBC"; "setup=DU+NFC"; "-- timelines --"; "heat-map comparison" ];
  check_bool "no broken timelines" true (not (contains text "BROKEN"))

let test_perfetto_golden () =
  let rep = report_of_run () in
  let out = Report.to_perfetto rep in
  (* determinism: exporting twice is byte-identical *)
  Alcotest.(check string) "deterministic" out (Report.to_perfetto rep);
  match Json.parse out with
  | Error e -> Alcotest.fail ("invalid JSON: " ^ e)
  | Ok j ->
      let events =
        match Json.member "traceEvents" j with
        | Some (Json.List es) -> es
        | _ -> Alcotest.fail "no traceEvents array"
      in
      check_bool "has events" true (events <> []);
      (* ts monotone over the whole stream *)
      let ts_of e =
        match Json.member "ts" e with Some (Json.Int t) -> Some t | _ -> None
      in
      let tss = List.filter_map ts_of events in
      check_bool "ts monotone" true
        (fst
           (List.fold_left
              (fun (ok, prev) t -> (ok && t >= prev, t))
              (true, min_int) tss));
      (* pid mapping: groups numbered in first-appearance order, with
         process_name metadata naming each *)
      let meta_names =
        List.filter_map
          (fun e ->
            match (Json.member "ph" e, Json.member "name" e) with
            | Some (Json.Str "M"), Some (Json.Str "process_name") -> (
                match (Json.member "pid" e, Json.member "args" e) with
                | Some (Json.Int pid), Some args -> (
                    match Json.member "name" args with
                    | Some (Json.Str n) -> Some (pid, n)
                    | _ -> None)
                | _ -> None)
            | _ -> None)
          events
      in
      check_bool "pid 1 is the first group (UIP ran first)" true
        (match List.assoc_opt 1 meta_names with
        | Some n -> contains n "UIP"
        | None -> false);
      check_int "two processes" 2
        (List.length (List.sort_uniq compare (List.map fst meta_names)));
      (* every slice carries pid/tid/dur; phase-track slices (cat
         "phase") use known phase names, shard-track slices (cat "2pc")
         use the 2PC span kind names *)
      let phase_names = List.map Timeline.phase_name Timeline.all_phases in
      let twopc_names =
        [ "prepare_append"; "prepare_force"; "decision_force"; "completion" ]
      in
      List.iter
        (fun e ->
          match Json.member "ph" e with
          | Some (Json.Str "X") ->
              check_bool "slice has pid" true (Json.member "pid" e <> None);
              check_bool "slice has tid" true (Json.member "tid" e <> None);
              (match (Json.member "name" e, Json.member "dur" e) with
              | Some (Json.Str n), Some (Json.Int d) ->
                  let expected =
                    match Json.member "cat" e with
                    | Some (Json.Str "2pc") -> twopc_names
                    | _ -> phase_names
                  in
                  check_bool ("slice name " ^ n) true (List.mem n expected);
                  check_bool "positive dur" true (d > 0)
              | _ -> Alcotest.fail "slice missing name/dur")
          | _ -> ())
        events

let test_report_empty_sources () =
  match Report.of_sources () with
  | Ok rep -> check_bool "empty" true (Report.is_empty rep)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Export→import identity pinned across ALL span kinds, the four 2PC
   kinds included (QCheck over the field values).                      *)

let all_kinds_of_seed seed =
  let rng = Random.State.make [| seed; 0x2bc |] in
  let i n = Random.State.int rng n in
  let b () = Random.State.bool rng in
  let inv = Op.invocation ~args:[ Value.int (i 100) ] "deposit" in
  let op =
    Op.make ~obj:"BA" ~args:[ Value.int (i 100) ] "deposit" (Value.int (i 100))
  in
  [
    Trace.Begin;
    Trace.Invoke { obj = "BA"; inv };
    Trace.Executed { op };
    Trace.Blocked { obj = "BA"; inv; holders = [ Tid.of_int (i 9) ] };
    Trace.No_response { obj = "BA"; inv };
    Trace.Woken { obj = "BA"; waited = i 30 };
    Trace.Validating;
    Trace.Validated { ok = b () };
    Trace.Commit;
    Trace.Abort;
    Trace.Deadlock_victim { cycle = [ Tid.of_int (i 9); Tid.of_int (9 + i 9) ] };
    Trace.Lock_release { obj = "BA" };
    Trace.Wal_append { record = "commit" };
    Trace.Wal_force;
    Trace.Wal_flush_wait { upto = i 1000 };
    Trace.Durable { lsn = i 1000 };
    Trace.Checkpoint { ops = i 64 };
    Trace.Crash_recover { replayed = i 100; losers = i 8 };
    Trace.Recovery_phase { phase = "scan"; wall_us = i 10_000; items = i 500 };
    Trace.Prepare_append { shard = i 8; gtid = i 40 };
    Trace.Prepare_force { shard = i 8; lsn = i 1000; gtid = i 40 };
    Trace.Decision_force { shard = i 8; lsn = i 1000; gtid = i 40; commit = b () };
    Trace.Completion { shard = i 8; gtid = i 40; commit = b () };
  ]

let all_kinds_gen = QCheck2.Gen.(int_bound 100_000)

let all_kinds_roundtrip_prop seed =
  let kinds = all_kinds_of_seed seed in
  (* one event per kind: the list above must never silently miss one *)
  List.length (List.sort_uniq compare (List.map Trace.kind_name kinds))
  = List.length kinds
  &&
  let events =
    List.mapi
      (fun idx k ->
        { Trace.ts = idx; tid = Some (Tid.of_int (idx mod 7)); kind = k })
      kinds
  in
  let dumped = Trace.to_jsonl (Trace.of_events events) in
  match Trace.parse_jsonl dumped with
  | Error _ -> false
  | Ok lines ->
      List.length lines = List.length events
      && List.for_all2
           (fun e (e', extras) -> e = e' && extras = [])
           events lines

(* ------------------------------------------------------------------ *)
(* Multi-trace merge: identical label sets coalesce, distinct ones stay
   separate groups.                                                    *)

let test_report_multi_trace_merge () =
  let tr = recorded_trace () in
  let dump extra = Trace.to_jsonl ~extra tr in
  let d1 = dump [ ("scenario", "s"); ("seed", "1") ] in
  let d2 = dump [ ("scenario", "s"); ("seed", "2") ] in
  match Report.of_sources ~traces:[ d1; d1; d2 ] () with
  | Error e -> Alcotest.fail e
  | Ok rep -> (
      check_int "identical label sets coalesce" 2 (List.length rep.Report.groups);
      let n = List.length (Trace.events tr) in
      match rep.Report.groups with
      | [ g1; g2 ] ->
          check_bool "first-appearance order" true
            (List.assoc_opt "seed" g1.Report.group_labels = Some "1");
          check_int "coalesced group holds both dumps' events" (2 * n)
            (List.length g1.Report.events);
          check_int "distinct label set stays separate" n
            (List.length g2.Report.events)
      | _ -> Alcotest.fail "expected two groups")

(* ------------------------------------------------------------------ *)
(* 2PC spans: timeline tiling of the new phases, audit rendering, and
   the Perfetto shard tracks + flow arrows.                            *)

let twopc_events =
  let tid = Tid.of_int 1 in
  List.mapi
    (fun i k -> { Trace.ts = i; tid = Some tid; kind = k })
    [
      Trace.Begin;
      Trace.Prepare_append { shard = 0; gtid = 0 };
      Trace.Prepare_force { shard = 0; lsn = 3; gtid = 0 };
      Trace.Prepare_append { shard = 1; gtid = 0 };
      Trace.Prepare_force { shard = 1; lsn = 5; gtid = 0 };
      Trace.Decision_force { shard = 0; lsn = 6; gtid = 0; commit = true };
      Trace.Completion { shard = 0; gtid = 0; commit = true };
      Trace.Completion { shard = 1; gtid = 0; commit = true };
      Trace.Commit;
    ]

let test_timeline_tiling_2pc () =
  let txns = Timeline.of_events twopc_events in
  assert_tiling txns;
  match txns with
  | [ t ] ->
      check_bool "prepare ticks" true (Timeline.phase_total t Timeline.Prepare > 0);
      check_bool "decide ticks" true (Timeline.phase_total t Timeline.Decide > 0);
      check_bool "complete ticks" true
        (Timeline.phase_total t Timeline.Complete > 0)
  | _ -> Alcotest.fail "one transaction expected"

let audit_jsonl =
  "{\"meta\":{\"schema\":\"tm-2pc/1\",\"binary\":\"test\"}}\n\
   {\"shard\":0,\"tid\":7,\"outcome\":\"commit\",\"evidence\":\"decision\"}\n\
   {\"shard\":2,\"tid\":9,\"outcome\":\"abort\",\"evidence\":\"presumed\"}\n"

let test_report_audit_section () =
  match Report.of_sources ~audit_jsonl () with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      check_bool "audit alone is not empty" true (not (Report.is_empty rep));
      check_int "entries" 2 (List.length rep.Report.audit);
      let text = Report.to_text rep in
      List.iter
        (fun needle -> check_bool needle true (contains text needle))
        [
          "2PC in-doubt audit";
          "shard 0: T7 -> commit (evidence: decision)";
          "shard 2: T9 -> abort (evidence: presumed)";
          "anomalies";
          "in-doubt prepares at recovery: 2";
        ];
      check_bool "presumed annotation" true
        (List.exists
           (fun a -> contains a "presumed")
           (Report.annotations rep));
      (match Report.to_json rep with
      | Json.Obj members ->
          check_bool "json audit member" true (List.mem_assoc "audit" members);
          check_bool "json annotations member" true
            (List.mem_assoc "annotations" members)
      | _ -> Alcotest.fail "object expected")

let test_report_audit_bad_header () =
  let bad =
    "{\"meta\":{\"schema\":\"tm-trace/1\",\"binary\":\"test\"}}\n\
     {\"shard\":0,\"tid\":7,\"outcome\":\"commit\",\"evidence\":\"decision\"}\n"
  in
  check_bool "wrong schema family rejected" true
    (Result.is_error (Report.of_sources ~audit_jsonl:bad ()))

let test_perfetto_shard_tracks_and_flows () =
  let tr = Trace.of_events twopc_events in
  match Report.of_sources ~trace_jsonl:(Trace.to_jsonl tr) () with
  | Error e -> Alcotest.fail e
  | Ok rep -> (
      let out = Report.to_perfetto rep in
      match Json.parse out with
      | Error e -> Alcotest.fail ("invalid JSON: " ^ e)
      | Ok j ->
          let events =
            match Json.member "traceEvents" j with
            | Some (Json.List es) -> es
            | _ -> Alcotest.fail "no traceEvents array"
          in
          let with_cat cat =
            List.filter (fun e -> Json.member "cat" e = Some (Json.Str cat)) events
          in
          let tids_of es =
            List.sort_uniq compare
              (List.filter_map
                 (fun e ->
                   match Json.member "tid" e with
                   | Some (Json.Int t) -> Some t
                   | _ -> None)
                 es)
          in
          check_bool "one track per shard at 1_000_000+shard" true
            (tids_of (with_cat "2pc") = [ 1_000_000; 1_000_001 ]);
          (* every shard track is named by thread_name metadata *)
          let thread_names =
            List.filter_map
              (fun e ->
                match (Json.member "ph" e, Json.member "name" e) with
                | Some (Json.Str "M"), Some (Json.Str "thread_name") -> (
                    match (Json.member "tid" e, Json.member "args" e) with
                    | Some (Json.Int t), Some args when t >= 1_000_000 -> (
                        match Json.member "name" args with
                        | Some (Json.Str n) -> Some (t, n)
                        | _ -> None)
                    | _ -> None)
                | _ -> None)
              events
          in
          check_bool "shard 0 track named" true
            (List.assoc_opt 1_000_000 thread_names = Some "shard 0");
          check_bool "shard 1 track named" true
            (List.assoc_opt 1_000_001 thread_names = Some "shard 1");
          let flows = with_cat "2pc-flow" in
          let ph p =
            List.filter (fun e -> Json.member "ph" e = Some (Json.Str p)) flows
          in
          check_int "one flow start per durable prepare" 2 (List.length (ph "s"));
          check_int "flow finishes pair the starts" 2 (List.length (ph "f"));
          (* the finish ends of both arrows land on the decision slice *)
          List.iter
            (fun e ->
              check_int "finish at the decision's position" 5
                (match Json.member "ts" e with Some (Json.Int t) -> t | _ -> -1))
            (ph "f"))

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json ints stay ints" `Quick test_json_ints_stay_ints;
    Alcotest.test_case "trace jsonl round trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "trace jsonl bad line" `Quick test_jsonl_bad_line;
    Alcotest.test_case "timeline tiling (locking)" `Quick test_timeline_tiling_locking;
    Alcotest.test_case "timeline tiling (occ validate)" `Quick test_timeline_tiling_occ;
    Alcotest.test_case "timeline tiling (durable, group commit)" `Quick
      test_timeline_tiling_durable_group_commit;
    Helpers.qcheck ~count:25 "durable trace replay passes the checker"
      durable_replay_gen durable_replay_prop;
    Alcotest.test_case "blocking edges" `Quick test_blocking_edges;
    Alcotest.test_case "critical paths sum to spans" `Quick test_critical_paths;
    Alcotest.test_case "prometheus escaping round trip" `Quick
      test_prometheus_escaping_roundtrip;
    Alcotest.test_case "heat-map comparison (BA, SQ)" `Quick
      test_heatmap_comparison_two_adts;
    Alcotest.test_case "heat maps offline = live" `Quick
      test_heatmap_prometheus_roundtrip;
    Alcotest.test_case "report groups and text" `Quick test_report_groups_and_text;
    Alcotest.test_case "perfetto exporter golden" `Quick test_perfetto_golden;
    Alcotest.test_case "report of empty sources" `Quick test_report_empty_sources;
    Helpers.qcheck ~count:50 "export→import identity over all span kinds"
      all_kinds_gen all_kinds_roundtrip_prop;
    Alcotest.test_case "multi-trace merge" `Quick test_report_multi_trace_merge;
    Alcotest.test_case "timeline tiling (2pc phases)" `Quick
      test_timeline_tiling_2pc;
    Alcotest.test_case "report audit section" `Quick test_report_audit_section;
    Alcotest.test_case "report audit bad header" `Quick
      test_report_audit_bad_header;
    Alcotest.test_case "perfetto shard tracks and flows" `Quick
      test_perfetto_shard_tracks_and_flows;
  ]
